(* Tests for the CFG IR, frequency estimation, and trace selection. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let v n = n (* program variable = int register name *)

let simple_instr ?dst op srcs = Cs_cfg.Cfg.pinstr op ?dst srcs

(* A diamond with a hot left arm and a cold right arm, joining into an
   exit:      entry -> (0.9) hot | (0.1) cold -> join -> exit *)
let diamond =
  {
    Cs_cfg.Cfg.entry = "entry";
    blocks =
      [
        { Cs_cfg.Cfg.label = "entry";
          body = [ simple_instr Cs_ddg.Opcode.Const ~dst:(v 0) [] ];
          succs = [ ("hot", 0.9); ("cold", 0.1) ] };
        { Cs_cfg.Cfg.label = "hot";
          body = [ simple_instr Cs_ddg.Opcode.Add ~dst:(v 1) [ v 0; v 0 ] ];
          succs = [ ("join", 1.0) ] };
        { Cs_cfg.Cfg.label = "cold";
          body = [ simple_instr Cs_ddg.Opcode.Sub ~dst:(v 1) [ v 0; v 0 ] ];
          succs = [ ("join", 1.0) ] };
        { Cs_cfg.Cfg.label = "join";
          body = [ simple_instr Cs_ddg.Opcode.Mul ~dst:(v 2) [ v 1; v 0 ] ];
          succs = [] };
      ];
  }

let loop =
  {
    Cs_cfg.Cfg.entry = "head";
    blocks =
      [
        { Cs_cfg.Cfg.label = "head";
          body = [ simple_instr Cs_ddg.Opcode.Const ~dst:(v 0) [] ];
          succs = [ ("body", 0.95); ("exit", 0.05) ] };
        { Cs_cfg.Cfg.label = "body";
          body = [ simple_instr Cs_ddg.Opcode.Add ~dst:(v 0) [ v 0; v 0 ] ];
          succs = [ ("head", 1.0) ] };
        { Cs_cfg.Cfg.label = "exit"; body = []; succs = [] };
      ];
  }

let test_validate_ok () =
  check_bool "diamond valid" true (Cs_cfg.Cfg.validate diamond = Ok ());
  check_bool "loop valid" true (Cs_cfg.Cfg.validate loop = Ok ())

let test_validate_bad_probabilities () =
  let bad =
    { diamond with
      Cs_cfg.Cfg.blocks =
        List.map
          (fun b ->
            if b.Cs_cfg.Cfg.label = "entry" then
              { b with Cs_cfg.Cfg.succs = [ ("hot", 0.5); ("cold", 0.1) ] }
            else b)
          diamond.Cs_cfg.Cfg.blocks }
  in
  check_bool "rejected" true (match Cs_cfg.Cfg.validate bad with Error _ -> true | Ok () -> false)

let test_validate_unknown_target () =
  let bad =
    { diamond with
      Cs_cfg.Cfg.blocks =
        List.map
          (fun b ->
            if b.Cs_cfg.Cfg.label = "hot" then { b with Cs_cfg.Cfg.succs = [ ("ghost", 1.0) ] }
            else b)
          diamond.Cs_cfg.Cfg.blocks }
  in
  check_bool "rejected" true (match Cs_cfg.Cfg.validate bad with Error _ -> true | Ok () -> false)

let test_frequencies_diamond () =
  let f = Cs_cfg.Cfg.frequencies diamond in
  let get l = List.assoc l f in
  check_bool "entry is 1" true (Float.abs (get "entry" -. 1.0) < 1e-9);
  check_bool "hot beats cold" true (get "hot" > get "cold");
  (* Damping discounts depth, so compare against the arms, not entry. *)
  check_bool "join collects both arms" true (get "join" > get "cold");
  check_bool "join substantial" true (get "join" > 0.5)

let test_frequencies_loop_bounded () =
  let f = Cs_cfg.Cfg.frequencies loop in
  let body = List.assoc "body" f in
  check_bool "loop amplified" true (body > 1.5);
  check_bool "loop bounded" true (body < 50.0)

let test_trace_selection_covers_blocks () =
  let traces = Cs_cfg.Trace.select diamond in
  let members = List.concat traces |> List.sort compare in
  Alcotest.(check (list string)) "partition" [ "cold"; "entry"; "hot"; "join" ] members

let test_trace_selection_follows_hot_path () =
  let traces = Cs_cfg.Trace.select diamond in
  let first = List.hd traces in
  check_bool "hot path together" true
    (first = [ "entry"; "hot"; "join" ] || first = [ "entry"; "hot" ]);
  check_bool "cold apart" true (not (List.mem "cold" first))

let test_trace_selection_loop () =
  let traces = Cs_cfg.Trace.select loop in
  let members = List.concat traces |> List.sort compare in
  Alcotest.(check (list string)) "partition" [ "body"; "exit"; "head" ] members

let test_region_of_trace_ssa () =
  let region = Cs_cfg.Trace.region_of_trace diamond [ "entry"; "hot"; "join" ] in
  let graph = region.Cs_ddg.Region.graph in
  check_int "three instrs" 3 (Cs_ddg.Graph.n graph);
  (* const -> add -> mul is a chain through the renamed variables. *)
  check_bool "const feeds add" true (List.mem 1 (Cs_ddg.Graph.succs graph 0));
  check_bool "add feeds mul" true (List.mem 2 (Cs_ddg.Graph.succs graph 1));
  check_bool "no live-ins needed" true
    (Cs_ddg.Reg.Set.is_empty (Cs_ddg.Graph.live_in_regs graph))

let test_region_of_trace_live_in () =
  (* A trace starting at "join" reads v1/v0 before any definition: both
     become live-ins. *)
  let region = Cs_cfg.Trace.region_of_trace diamond [ "join" ] in
  check_int "two live-ins" 2
    (Cs_ddg.Reg.Set.cardinal (Cs_ddg.Graph.live_in_regs region.Cs_ddg.Region.graph))

let test_region_of_trace_redefinition () =
  (* head;body redefines v0: SSA renaming must create a fresh register
     and chain the add onto the const. *)
  let region = Cs_cfg.Trace.region_of_trace loop [ "head"; "body" ] in
  let graph = region.Cs_ddg.Region.graph in
  check_int "two instrs" 2 (Cs_ddg.Graph.n graph);
  check_bool "chained" true (List.mem 1 (Cs_ddg.Graph.succs graph 0))

let test_regions_schedule_end_to_end () =
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  List.iter
    (fun region ->
      let sched, _ = Cs_sim.Pipeline.convergent ~machine region in
      match Cs_sim.Interp.equivalent region sched with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    (List.filter
       (fun r -> Cs_ddg.Region.n_instrs r > 0)
       (Cs_cfg.Trace.regions diamond))

let test_rejects_empty_trace () =
  check_bool "raises" true
    (try
       ignore (Cs_cfg.Trace.region_of_trace diamond []);
       false
     with Invalid_argument _ -> true)

let test_preplacement_carried_through () =
  let cfg =
    {
      Cs_cfg.Cfg.entry = "b";
      blocks =
        [
          { Cs_cfg.Cfg.label = "b";
            body =
              [ Cs_cfg.Cfg.pinstr Cs_ddg.Opcode.Const ~dst:(v 0) [];
                Cs_cfg.Cfg.pinstr ~preplace:2 Cs_ddg.Opcode.Load ~dst:(v 1) [ v 0 ] ];
            succs = [] };
        ];
    }
  in
  let region = Cs_cfg.Trace.region_of_trace cfg [ "b" ] in
  Alcotest.(check (list (pair int int))) "preplaced survives" [ (1, 2) ]
    (Cs_ddg.Graph.preplaced region.Cs_ddg.Region.graph)

(* --- Dominators --- *)

let test_dominators_diamond () =
  check_bool "entry dominates join" true (Cs_cfg.Dominators.dominates diamond "entry" "join");
  check_bool "hot does not dominate join" false
    (Cs_cfg.Dominators.dominates diamond "hot" "join");
  check_bool "reflexive" true (Cs_cfg.Dominators.dominates diamond "hot" "hot")

let test_idoms_diamond () =
  let idoms = Cs_cfg.Dominators.immediate_dominators diamond in
  Alcotest.(check (option string)) "join idom" (Some "entry") (List.assoc_opt "join" idoms);
  Alcotest.(check (option string)) "hot idom" (Some "entry") (List.assoc_opt "hot" idoms);
  check_bool "entry has no idom" true (List.assoc_opt "entry" idoms = None)

let test_back_edges () =
  Alcotest.(check (list (pair string string))) "loop back edge" [ ("body", "head") ]
    (Cs_cfg.Dominators.back_edges loop);
  Alcotest.(check (list (pair string string))) "diamond has none" []
    (Cs_cfg.Dominators.back_edges diamond)

let test_natural_loops () =
  match Cs_cfg.Dominators.natural_loops loop with
  | [ (header, body) ] ->
    Alcotest.(check string) "header" "head" header;
    Alcotest.(check (list string)) "body" [ "body"; "head" ] body
  | other -> Alcotest.failf "expected one loop, got %d" (List.length other)

(* --- Superblock --- *)

(* A trace with a side entrance: cold re-enters the hot path at "mid". *)
let side_entry_cfg =
  {
    Cs_cfg.Cfg.entry = "entry";
    blocks =
      [
        { Cs_cfg.Cfg.label = "entry";
          body = [ simple_instr Cs_ddg.Opcode.Const ~dst:(v 0) [] ];
          succs = [ ("mid", 0.9); ("cold", 0.1) ] };
        { Cs_cfg.Cfg.label = "cold";
          body = [ simple_instr Cs_ddg.Opcode.Sub ~dst:(v 0) [ v 0; v 0 ] ];
          succs = [ ("mid", 1.0) ] };
        { Cs_cfg.Cfg.label = "mid";
          body = [ simple_instr Cs_ddg.Opcode.Add ~dst:(v 1) [ v 0; v 0 ] ];
          succs = [ ("out", 1.0) ] };
        { Cs_cfg.Cfg.label = "out";
          body = [ simple_instr Cs_ddg.Opcode.Mul ~dst:(v 2) [ v 1; v 1 ] ];
          succs = [] };
      ];
  }

let test_side_entrances_detected () =
  Alcotest.(check (list (pair string string))) "cold->mid is a side entrance"
    [ ("cold", "mid") ]
    (Cs_cfg.Superblock.side_entrances side_entry_cfg [ "entry"; "mid"; "out" ]);
  (* In the diamond, the cold arm re-enters the hot trace at the join. *)
  Alcotest.(check (list (pair string string))) "diamond join is a side entrance"
    [ ("cold", "join") ]
    (Cs_cfg.Superblock.side_entrances diamond [ "entry"; "hot"; "join" ]);
  (* The trace's own fallthrough edges are not side entrances. *)
  Alcotest.(check (list (pair string string))) "fallthrough is not" []
    (Cs_cfg.Superblock.side_entrances side_entry_cfg [ "mid"; "out" ])

let test_tail_duplication_removes_side_entrances () =
  let cfg', sb = Cs_cfg.Superblock.tail_duplicate side_entry_cfg [ "entry"; "mid"; "out" ] in
  check_bool "still valid" true (Cs_cfg.Cfg.validate cfg' = Ok ());
  Alcotest.(check (list (pair string string))) "no side entrances left" []
    (Cs_cfg.Superblock.side_entrances cfg' sb);
  check_bool "clone exists" true (Cs_cfg.Cfg.find_block cfg' "mid.dup" <> None);
  (* Cold now branches into the duplicated tail. *)
  let cold = Option.get (Cs_cfg.Cfg.find_block cfg' "cold") in
  check_bool "cold retargeted" true (List.mem_assoc "mid.dup" cold.Cs_cfg.Cfg.succs)

let test_superblock_form_schedules () =
  let cfg', superblocks = Cs_cfg.Superblock.form side_entry_cfg in
  check_bool "valid cfg" true (Cs_cfg.Cfg.validate cfg' = Ok ());
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  List.iter
    (fun sb ->
      let region = Cs_cfg.Trace.region_of_trace cfg' sb in
      if Cs_ddg.Region.n_instrs region > 0 then begin
        let sched, _ = Cs_sim.Pipeline.convergent ~machine region in
        check_bool "equivalent" true (Cs_sim.Interp.equivalent region sched = Ok ())
      end)
    superblocks

let test_superblock_noop_without_side_entrances () =
  (* A trace that nothing re-enters needs no duplication. *)
  let cfg', sb = Cs_cfg.Superblock.tail_duplicate side_entry_cfg [ "entry" ] in
  check_int "no new blocks"
    (List.length side_entry_cfg.Cs_cfg.Cfg.blocks)
    (List.length cfg'.Cs_cfg.Cfg.blocks);
  Alcotest.(check (list string)) "trace unchanged" [ "entry" ] sb

(* --- Hyperblock --- *)

let test_hyperblock_diamond () =
  let region = Cs_cfg.Hyperblock.region_of diamond ~entry:"entry" in
  let graph = region.Cs_ddg.Region.graph in
  (* const, guard const+cmp(+zero), add, sub, select, mul at least. *)
  check_bool "select present" true
    (Array.exists (fun i -> i.Cs_ddg.Instr.op = Cs_ddg.Opcode.Select) (Cs_ddg.Graph.instrs graph));
  check_bool "both arms emitted" true
    (Array.exists (fun i -> i.Cs_ddg.Instr.op = Cs_ddg.Opcode.Add) (Cs_ddg.Graph.instrs graph)
    && Array.exists (fun i -> i.Cs_ddg.Instr.op = Cs_ddg.Opcode.Sub) (Cs_ddg.Graph.instrs graph));
  check_bool "no live-ins" true
    (Cs_ddg.Reg.Set.is_empty (Cs_ddg.Graph.live_in_regs graph))

let test_hyperblock_schedules () =
  let region = Cs_cfg.Hyperblock.region_of diamond ~entry:"entry" in
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let sched, _ = Cs_sim.Pipeline.convergent ~machine region in
  check_bool "equivalent" true (Cs_sim.Interp.equivalent region sched = Ok ())

let test_hyperblock_rejects_loop () =
  check_bool "raises on cycle" true
    (try
       ignore (Cs_cfg.Hyperblock.region_of loop ~entry:"head");
       false
     with Invalid_argument _ -> true)

let test_hyperblock_straightline () =
  let cfg =
    {
      Cs_cfg.Cfg.entry = "a";
      blocks =
        [
          { Cs_cfg.Cfg.label = "a";
            body = [ simple_instr Cs_ddg.Opcode.Const ~dst:(v 0) [] ];
            succs = [ ("b", 1.0) ] };
          { Cs_cfg.Cfg.label = "b";
            body = [ simple_instr Cs_ddg.Opcode.Add ~dst:(v 1) [ v 0; v 0 ] ];
            succs = [] };
        ];
    }
  in
  let region = Cs_cfg.Hyperblock.region_of cfg ~entry:"a" in
  (* No branch: no predicate, no select. *)
  check_int "two instrs" 2 (Cs_ddg.Region.n_instrs region);
  check_bool "no select" true
    (not
       (Array.exists
          (fun i -> i.Cs_ddg.Instr.op = Cs_ddg.Opcode.Select)
          (Cs_ddg.Graph.instrs region.Cs_ddg.Region.graph)))

let test_hyperblock_agreeing_join_needs_no_select () =
  (* Both arms pass v0 through untouched: the join should not merge. *)
  let cfg =
    {
      Cs_cfg.Cfg.entry = "e";
      blocks =
        [
          { Cs_cfg.Cfg.label = "e";
            body = [ simple_instr Cs_ddg.Opcode.Const ~dst:(v 0) [] ];
            succs = [ ("l", 0.5); ("r", 0.5) ] };
          { Cs_cfg.Cfg.label = "l"; body = []; succs = [ ("j", 1.0) ] };
          { Cs_cfg.Cfg.label = "r"; body = []; succs = [ ("j", 1.0) ] };
          { Cs_cfg.Cfg.label = "j";
            body = [ simple_instr Cs_ddg.Opcode.Mul ~dst:(v 1) [ v 0; v 0 ] ];
            succs = [] };
        ];
    }
  in
  let region = Cs_cfg.Hyperblock.region_of cfg ~entry:"e" in
  check_bool "no select for agreeing defs" true
    (not
       (Array.exists
          (fun i -> i.Cs_ddg.Instr.op = Cs_ddg.Opcode.Select)
          (Cs_ddg.Graph.instrs region.Cs_ddg.Region.graph)))

let () =
  Alcotest.run "cs_cfg"
    [
      ( "cfg",
        [
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "bad probabilities" `Quick test_validate_bad_probabilities;
          Alcotest.test_case "unknown target" `Quick test_validate_unknown_target;
          Alcotest.test_case "frequencies diamond" `Quick test_frequencies_diamond;
          Alcotest.test_case "frequencies loop" `Quick test_frequencies_loop_bounded;
        ] );
      ( "trace",
        [
          Alcotest.test_case "covers blocks" `Quick test_trace_selection_covers_blocks;
          Alcotest.test_case "follows hot path" `Quick test_trace_selection_follows_hot_path;
          Alcotest.test_case "loop" `Quick test_trace_selection_loop;
          Alcotest.test_case "ssa conversion" `Quick test_region_of_trace_ssa;
          Alcotest.test_case "live-ins" `Quick test_region_of_trace_live_in;
          Alcotest.test_case "redefinition" `Quick test_region_of_trace_redefinition;
          Alcotest.test_case "end to end" `Quick test_regions_schedule_end_to_end;
          Alcotest.test_case "empty trace" `Quick test_rejects_empty_trace;
          Alcotest.test_case "preplacement" `Quick test_preplacement_carried_through;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "idoms" `Quick test_idoms_diamond;
          Alcotest.test_case "back edges" `Quick test_back_edges;
          Alcotest.test_case "natural loops" `Quick test_natural_loops;
        ] );
      ( "superblock",
        [
          Alcotest.test_case "side entrances" `Quick test_side_entrances_detected;
          Alcotest.test_case "tail duplication" `Quick test_tail_duplication_removes_side_entrances;
          Alcotest.test_case "form + schedule" `Quick test_superblock_form_schedules;
          Alcotest.test_case "noop without entrances" `Quick test_superblock_noop_without_side_entrances;
        ] );
      ( "generate",
        [
          Alcotest.test_case "valid" `Quick (fun () ->
              for seed = 1 to 10 do
                let cfg = Cs_cfg.Generate.acyclic ~seed () in
                check_bool "valid" true (Cs_cfg.Cfg.validate cfg = Ok ());
                Alcotest.(check (list (pair string string))) "acyclic" []
                  (Cs_cfg.Dominators.back_edges cfg)
              done);
          Alcotest.test_case "deterministic" `Quick (fun () ->
              let a = Cs_cfg.Generate.acyclic ~seed:7 () in
              let b = Cs_cfg.Generate.acyclic ~seed:7 () in
              check_int "same size" (List.length a.Cs_cfg.Cfg.blocks)
                (List.length b.Cs_cfg.Cfg.blocks));
          Alcotest.test_case "schedulable end to end" `Quick (fun () ->
              let cfg = Cs_cfg.Generate.acyclic ~seed:3 () in
              let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
              List.iter
                (fun region ->
                  if Cs_ddg.Region.n_instrs region > 0 then begin
                    let sched, _ = Cs_sim.Pipeline.convergent ~machine region in
                    check_bool "equivalent" true
                      (Cs_sim.Interp.equivalent region sched = Ok ())
                  end)
                (Cs_cfg.Trace.regions cfg));
        ] );
      ( "hyperblock",
        [
          Alcotest.test_case "diamond" `Quick test_hyperblock_diamond;
          Alcotest.test_case "schedules" `Quick test_hyperblock_schedules;
          Alcotest.test_case "rejects loop" `Quick test_hyperblock_rejects_loop;
          Alcotest.test_case "straight line" `Quick test_hyperblock_straightline;
          Alcotest.test_case "agreeing join" `Quick test_hyperblock_agreeing_join_needs_no_select;
        ] );
    ]
