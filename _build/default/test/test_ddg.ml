(* Unit tests for Cs_ddg: opcodes, builder, graph, analyses, regions. *)

open Cs_ddg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

(* A diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 built from registers. *)
let diamond () =
  let b = Builder.create ~name:"diamond" () in
  let a = Builder.op0 b Opcode.Const in
  let l = Builder.op1 b Opcode.Fadd a in
  let r = Builder.op1 b Opcode.Fmul a in
  let _j = Builder.op2 b Opcode.Fadd l r in
  Builder.finish b

(* --- Opcode --- *)

let test_opcode_classes () =
  check_bool "add is int" true (Opcode.cls Opcode.Add = Opcode.Int_op);
  check_bool "mul is mul" true (Opcode.cls Opcode.Mul = Opcode.Mul_op);
  check_bool "load is mem" true (Opcode.cls Opcode.Load = Opcode.Mem_op);
  check_bool "fadd is float" true (Opcode.cls Opcode.Fadd = Opcode.Float_op);
  check_bool "fdiv is fdiv" true (Opcode.cls Opcode.Fdiv = Opcode.Fdiv_op);
  check_bool "const is move" true (Opcode.cls Opcode.Const = Opcode.Move_op);
  check_bool "transfer is comm" true (Opcode.cls Opcode.Transfer = Opcode.Comm_op)

let test_opcode_memory () =
  check_bool "load mem" true (Opcode.is_memory Opcode.Load);
  check_bool "store mem" true (Opcode.is_memory Opcode.Store);
  check_bool "add not mem" false (Opcode.is_memory Opcode.Add)

let test_opcode_writes () =
  check_bool "store writes nothing" false (Opcode.writes_register Opcode.Store);
  List.iter
    (fun op -> if op <> Opcode.Store then check_bool "writes" true (Opcode.writes_register op))
    Opcode.all

let test_opcode_strings_unique () =
  let names = List.map Opcode.to_string Opcode.all in
  check_int "unique names" (List.length names) (List.length (List.sort_uniq compare names))

(* --- Builder / Graph --- *)

let test_builder_diamond_shape () =
  let region = diamond () in
  let g = region.Region.graph in
  check_int "4 nodes" 4 (Graph.n g);
  check_int "4 edges" 4 (Graph.n_edges g);
  check_ints "roots" [ 0 ] (Graph.roots g);
  check_ints "leaves" [ 3 ] (Graph.leaves g);
  check_ints "succs of 0" [ 1; 2 ] (Graph.succs g 0);
  check_ints "preds of 3" [ 1; 2 ] (Graph.preds g 3)

let test_builder_live_in () =
  let b = Builder.create ~name:"livein" () in
  let x = Builder.live_in ~home:2 b in
  let _y = Builder.op1 b Opcode.Fadd x in
  let region = Builder.finish b in
  let g = region.Region.graph in
  check_int "one instr" 1 (Graph.n g);
  check_bool "x is live-in" true (Reg.Set.mem x (Graph.live_in_regs g));
  check_bool "home recorded" true
    (Reg.Map.find_opt x region.Region.live_in_homes = Some 2)

let test_builder_store_has_no_dst () =
  let b = Builder.create ~name:"store" () in
  let addr = Builder.op0 b Opcode.Const in
  let v = Builder.op0 b Opcode.Const in
  Builder.store b ~addr v;
  let region = Builder.finish b in
  let store = Graph.instr region.Region.graph 2 in
  check_bool "no dst" true (store.Instr.dst = None);
  check_int "two srcs" 2 (List.length store.Instr.srcs)

let test_builder_preplace_recorded () =
  let b = Builder.create ~name:"pre" () in
  let addr = Builder.op0 b Opcode.Const in
  let _v = Builder.load b ~preplace:3 addr in
  let region = Builder.finish b in
  Alcotest.(check (list (pair int int))) "preplaced" [ (1, 3) ]
    (Graph.preplaced region.Region.graph)

let test_builder_mem_fence_edge () =
  let b = Builder.create ~name:"fence" () in
  let a1 = Builder.op0 b Opcode.Const in
  let v = Builder.op0 b Opcode.Const in
  Builder.store b ~addr:a1 v;
  let s1 = Builder.last_id b in
  let a2 = Builder.op0 b Opcode.Const in
  let _l = Builder.load b a2 in
  let l = Builder.last_id b in
  Builder.mem_fence_edge b s1 l;
  let region = Builder.finish b in
  check_bool "fence edge present" true (List.mem l (Graph.succs region.Region.graph s1))

let test_graph_rejects_cycle () =
  let instrs =
    [|
      Instr.make ~id:0 ~op:Opcode.Add ~dst:(Some 0) ~srcs:[] ();
      Instr.make ~id:1 ~op:Opcode.Add ~dst:(Some 1) ~srcs:[ 0 ] ();
    |]
  in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Graph.of_instrs: dependence graph has a cycle") (fun () ->
      ignore (Graph.of_instrs instrs ~extra_edges:[ (1, 0) ]))

let test_graph_rejects_duplicate_def () =
  let instrs =
    [|
      Instr.make ~id:0 ~op:Opcode.Add ~dst:(Some 0) ~srcs:[] ();
      Instr.make ~id:1 ~op:Opcode.Add ~dst:(Some 0) ~srcs:[] ();
    |]
  in
  Alcotest.check_raises "dup def"
    (Invalid_argument "Graph.of_instrs: register r0 defined twice") (fun () ->
      ignore (Graph.of_instrs instrs ~extra_edges:[]))

let test_graph_rejects_self_use () =
  let instrs = [| Instr.make ~id:0 ~op:Opcode.Add ~dst:(Some 0) ~srcs:[ 0 ] () |] in
  Alcotest.check_raises "self use"
    (Invalid_argument "Graph.of_instrs: instruction uses its own result") (fun () ->
      ignore (Graph.of_instrs instrs ~extra_edges:[]))

let test_graph_topo_is_valid () =
  let region = diamond () in
  let g = region.Region.graph in
  let order = Graph.topo_order g in
  let pos = Array.make (Graph.n g) 0 in
  Array.iteri (fun k i -> pos.(i) <- k) order;
  for i = 0 to Graph.n g - 1 do
    List.iter (fun s -> check_bool "topo edge" true (pos.(i) < pos.(s))) (Graph.succs g i)
  done

let test_graph_neighbors_no_dups () =
  let region = diamond () in
  let g = region.Region.graph in
  let nbrs = Graph.neighbors g 1 in
  check_int "two neighbors" 2 (List.length nbrs);
  check_int "unique" 2 (List.length (List.sort_uniq Int.compare nbrs))

let test_graph_defining_instr () =
  let b = Builder.create ~name:"def" () in
  let x = Builder.op0 b Opcode.Const in
  let region = Builder.finish b in
  check_bool "found" true (Graph.defining_instr region.Region.graph x = Some 0);
  check_bool "missing" true (Graph.defining_instr region.Region.graph 99 = None)

(* --- Analysis --- *)

let unit_analysis region = Analysis.make ~latency:(fun _ -> 1) region.Region.graph

let test_analysis_diamond_unit () =
  let region = diamond () in
  let a = unit_analysis region in
  check_int "cpl" 3 (Analysis.cpl a);
  check_int "earliest root" 0 (Analysis.earliest a 0);
  check_int "earliest join" 2 (Analysis.earliest a 3);
  check_int "latest root" 0 (Analysis.latest a 0);
  check_int "slack mid" 0 (Analysis.slack a 1);
  check_int "depth join" 2 (Analysis.depth a 3);
  check_int "height root" 2 (Analysis.height a 0)

let test_analysis_latency_weighted () =
  (* const(1) -> fmul(4) -> fadd(4)  vs  const -> fadd: CPL = 1+4+4 = 9 *)
  let b = Builder.create ~name:"lat" () in
  let k = Builder.op0 b Opcode.Const in
  let m = Builder.op1 b Opcode.Fmul k in
  let _s = Builder.op2 b Opcode.Fadd m k in
  let region = Builder.finish b in
  let a = Analysis.make ~latency:(Cs_machine.Machine.latency_of (Cs_machine.Vliw.create ())) region.Region.graph in
  check_int "cpl 9" 9 (Analysis.cpl a);
  check_int "fadd earliest" 5 (Analysis.earliest a 2);
  check_int "const slack 0" 0 (Analysis.slack a 0)

let test_analysis_rejects_zero_latency () =
  let region = diamond () in
  Alcotest.check_raises "latency >= 1"
    (Invalid_argument "Analysis.make: latency must be >= 1") (fun () ->
      ignore (Analysis.make ~latency:(fun _ -> 0) region.Region.graph))

let test_analysis_critical_path () =
  let region = diamond () in
  let a = unit_analysis region in
  let cp = Analysis.critical_path a in
  check_int "path length 3" 3 (List.length cp);
  check_bool "starts at root" true (List.hd cp = 0);
  check_bool "zero slack all" true (List.for_all (fun i -> Analysis.slack a i = 0) cp)

let test_analysis_critical_instrs () =
  let b = Builder.create ~name:"slackful" () in
  let k = Builder.op0 b Opcode.Const in
  let long = Builder.op1 b Opcode.Fdiv k in
  let short = Builder.op1 b Opcode.Mov k in
  let _j = Builder.op2 b Opcode.Fadd long short in
  let region = Builder.finish b in
  let a =
    Analysis.make ~latency:(Cs_machine.Machine.latency_of (Cs_machine.Vliw.create ()))
      region.Region.graph
  in
  check_bool "mov has slack" true (Analysis.slack a short > 0);
  check_bool "fdiv critical" true (List.mem long (Analysis.critical_instrs a))

let test_analysis_distance () =
  let region = diamond () in
  let a = unit_analysis region in
  check_int "0 to 3 via either" 2 (Analysis.distance a 0 3);
  check_int "1 to 2 via 0 or 3" 2 (Analysis.distance a 1 2);
  check_int "self" 0 (Analysis.distance a 1 1)

let test_analysis_distance_disconnected () =
  let b = Builder.create ~name:"disc" () in
  let _x = Builder.op0 b Opcode.Const in
  let _y = Builder.op0 b Opcode.Const in
  let region = Builder.finish b in
  let a = unit_analysis region in
  check_int "unreachable" max_int (Analysis.distance a 0 1)

let test_analysis_multi_source () =
  let region = diamond () in
  let a = unit_analysis region in
  let d = Analysis.multi_source_distance a ~sources:[ 1; 2 ] in
  check_int "source" 0 d.(1);
  check_int "join at 1" 1 d.(3);
  check_int "root at 1" 1 d.(0)

let test_analysis_max_depth () =
  let region = diamond () in
  check_int "max depth" 2 (Analysis.max_depth (unit_analysis region))

(* --- Region / Dot --- *)

let test_region_density () =
  let b = Builder.create ~name:"dens" () in
  let addr = Builder.op0 b Opcode.Const in
  let _l = Builder.load b ~preplace:0 addr in
  let region = Builder.finish b in
  check_int "preplaced count" 1 (Region.n_preplaced region);
  Alcotest.(check (float 1e-9)) "density" 0.5 (Region.preplacement_density region)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_dot_output () =
  let region = diamond () in
  let s = Dot.to_string region.Region.graph in
  check_bool "digraph" true (String.length s > 8 && String.sub s 0 7 = "digraph");
  check_bool "has an edge" true (contains s "n0 -> n1");
  check_bool "has join edge" true (contains s "n2 -> n3")

let test_dot_preplaced_triangle () =
  let b = Builder.create ~name:"tri" () in
  let addr = Builder.op0 b Opcode.Const in
  let _l = Builder.load b ~preplace:1 addr in
  let region = Builder.finish b in
  let s = Dot.to_string region.Region.graph in
  check_bool "triangle shape" true (contains s "triangle")

(* --- Textual --- *)

let sample_text =
  "region dot2\n\
   livein r10 @0\n\
   const r0\n\
   load r1 <- r0 @2\n\
   fmul r2 <- r1 r10\n\
   store - <- r0 r2 @2\n\
   liveout r2\n"

let test_textual_parse () =
  match Textual.of_string sample_text with
  | Error msg -> Alcotest.fail msg
  | Ok region ->
    check_int "four instrs" 4 (Graph.n region.Region.graph);
    check_int "two preplaced" 2 (List.length (Graph.preplaced region.Region.graph));
    check_int "one live-in" 1 (Reg.Set.cardinal (Graph.live_in_regs region.Region.graph));
    check_int "one live-out" 1 (Reg.Set.cardinal region.Region.live_outs);
    check_bool "live-in homed" true
      (Reg.Map.cardinal region.Region.live_in_homes = 1)

let test_textual_roundtrip () =
  match Textual.of_string sample_text with
  | Error msg -> Alcotest.fail msg
  | Ok region ->
    let text = Textual.to_string region in
    (match Textual.of_string text with
    | Error msg -> Alcotest.fail ("reparse: " ^ msg)
    | Ok region2 ->
      check_int "same size" (Graph.n region.Region.graph) (Graph.n region2.Region.graph);
      check_int "same edges" (Graph.n_edges region.Region.graph)
        (Graph.n_edges region2.Region.graph);
      check_int "same preplaced" 2 (List.length (Graph.preplaced region2.Region.graph)))

let test_textual_roundtrip_generated () =
  let region = Cs_workloads.Jacobi.generate ~clusters:4 () in
  match Textual.of_string (Textual.to_string region) with
  | Error msg -> Alcotest.fail msg
  | Ok region2 ->
    check_int "same size" (Graph.n region.Region.graph) (Graph.n region2.Region.graph);
    check_int "same edges" (Graph.n_edges region.Region.graph)
      (Graph.n_edges region2.Region.graph)

let test_textual_edge_line () =
  let text = "region fences\nconst r0\nconst r1\nstore - <- r0 r1\nload r2 <- r0\nedge 2 3\n" in
  match Textual.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok region ->
    check_bool "fence edge" true (List.mem 3 (Graph.succs region.Region.graph 2))

let test_textual_implicit_live_in () =
  (* Reading an undeclared register makes it a live-in. *)
  match Textual.of_string "region f\nfadd r1 <- r9 r9\n" with
  | Error msg -> Alcotest.fail msg
  | Ok region ->
    check_int "implicit live-in" 1 (Reg.Set.cardinal (Graph.live_in_regs region.Region.graph))

let test_textual_rejects_unknown_opcode () =
  check_bool "rejected" true
    (match Textual.of_string "region x\nfrobnicate r0\n" with Error _ -> true | Ok _ -> false)

let test_textual_rejects_bad_register () =
  check_bool "rejected" true
    (match Textual.of_string "region x\nconst banana\n" with Error _ -> true | Ok _ -> false)

let test_textual_rejects_unknown_liveout () =
  check_bool "rejected" true
    (match Textual.of_string "region x\nconst r0\nliveout r9\n" with
    | Error _ -> true
    | Ok _ -> false)

let test_textual_comments_ignored () =
  match Textual.of_string "# header\nregion x\nconst r0 # the answer\n" with
  | Error msg -> Alcotest.fail msg
  | Ok region ->
    check_int "one instr" 1 (Graph.n region.Region.graph);
    Alcotest.(check string) "tag kept" "the answer"
      (Graph.instr region.Region.graph 0).Instr.tag

let () =
  Alcotest.run "cs_ddg"
    [
      ( "opcode",
        [
          Alcotest.test_case "classes" `Quick test_opcode_classes;
          Alcotest.test_case "memory" `Quick test_opcode_memory;
          Alcotest.test_case "writes" `Quick test_opcode_writes;
          Alcotest.test_case "names unique" `Quick test_opcode_strings_unique;
        ] );
      ( "builder/graph",
        [
          Alcotest.test_case "diamond shape" `Quick test_builder_diamond_shape;
          Alcotest.test_case "live-in" `Quick test_builder_live_in;
          Alcotest.test_case "store no dst" `Quick test_builder_store_has_no_dst;
          Alcotest.test_case "preplace recorded" `Quick test_builder_preplace_recorded;
          Alcotest.test_case "mem fence edge" `Quick test_builder_mem_fence_edge;
          Alcotest.test_case "rejects cycle" `Quick test_graph_rejects_cycle;
          Alcotest.test_case "rejects dup def" `Quick test_graph_rejects_duplicate_def;
          Alcotest.test_case "rejects self use" `Quick test_graph_rejects_self_use;
          Alcotest.test_case "topo valid" `Quick test_graph_topo_is_valid;
          Alcotest.test_case "neighbors unique" `Quick test_graph_neighbors_no_dups;
          Alcotest.test_case "defining instr" `Quick test_graph_defining_instr;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "diamond unit" `Quick test_analysis_diamond_unit;
          Alcotest.test_case "latency weighted" `Quick test_analysis_latency_weighted;
          Alcotest.test_case "rejects zero latency" `Quick test_analysis_rejects_zero_latency;
          Alcotest.test_case "critical path" `Quick test_analysis_critical_path;
          Alcotest.test_case "critical instrs" `Quick test_analysis_critical_instrs;
          Alcotest.test_case "distance" `Quick test_analysis_distance;
          Alcotest.test_case "distance disconnected" `Quick test_analysis_distance_disconnected;
          Alcotest.test_case "multi source" `Quick test_analysis_multi_source;
          Alcotest.test_case "max depth" `Quick test_analysis_max_depth;
        ] );
      ( "region/dot",
        [
          Alcotest.test_case "density" `Quick test_region_density;
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "dot triangles" `Quick test_dot_preplaced_triangle;
        ] );
      ( "textual",
        [
          Alcotest.test_case "parse" `Quick test_textual_parse;
          Alcotest.test_case "roundtrip" `Quick test_textual_roundtrip;
          Alcotest.test_case "roundtrip generated" `Quick test_textual_roundtrip_generated;
          Alcotest.test_case "edge line" `Quick test_textual_edge_line;
          Alcotest.test_case "implicit live-in" `Quick test_textual_implicit_live_in;
          Alcotest.test_case "unknown opcode" `Quick test_textual_rejects_unknown_opcode;
          Alcotest.test_case "bad register" `Quick test_textual_rejects_bad_register;
          Alcotest.test_case "unknown liveout" `Quick test_textual_rejects_unknown_liveout;
          Alcotest.test_case "comments" `Quick test_textual_comments_ignored;
        ] );
    ]
