(* Tests for the benchmark generators and congruence mapping. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Congruence --- *)

let test_congruence_interleaved () =
  let c = Cs_workloads.Congruence.interleaved ~n_banks:4 in
  check_bool "0 -> 0" true (Cs_workloads.Congruence.bank c 0 = Some 0);
  check_bool "5 -> 1" true (Cs_workloads.Congruence.bank c 5 = Some 1);
  check_bool "negative folded" true (Cs_workloads.Congruence.bank c (-3) = Some 3)

let test_congruence_blocked () =
  let c = Cs_workloads.Congruence.blocked ~n_banks:4 ~block:64 in
  check_bool "0 -> 0" true (Cs_workloads.Congruence.bank c 0 = Some 0);
  check_bool "64 -> 1" true (Cs_workloads.Congruence.bank c 64 = Some 1);
  check_bool "wraps" true (Cs_workloads.Congruence.bank c 256 = Some 0)

let test_congruence_unanalyzable () =
  check_bool "no bank" true
    (Cs_workloads.Congruence.bank Cs_workloads.Congruence.unanalyzable 42 = None);
  check_bool "no banks" true
    (Cs_workloads.Congruence.n_banks Cs_workloads.Congruence.unanalyzable = None)

let test_congruence_rejects_bad () =
  Alcotest.check_raises "zero banks"
    (Invalid_argument "Congruence.interleaved: need positive banks") (fun () ->
      ignore (Cs_workloads.Congruence.interleaved ~n_banks:0))

(* --- Prog helpers --- *)

let test_prog_reduce_balanced () =
  let b = Cs_ddg.Builder.create ~name:"r" () in
  let vs = List.init 8 (fun _ -> Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const) in
  let _sum = Cs_workloads.Prog.reduce b Cs_ddg.Opcode.Fadd vs in
  let region = Cs_ddg.Builder.finish b in
  let a = Cs_ddg.Analysis.make ~latency:(fun _ -> 1) region.Cs_ddg.Region.graph in
  (* Balanced tree over 8 leaves: const + 3 levels of adds -> CPL 4. *)
  check_int "15 instrs" 15 (Cs_ddg.Region.n_instrs region);
  check_int "log depth" 4 (Cs_ddg.Analysis.cpl a)

let test_prog_reduce_empty_rejected () =
  let b = Cs_ddg.Builder.create ~name:"r0" () in
  Alcotest.check_raises "empty" (Invalid_argument "Prog.reduce: empty list") (fun () ->
      ignore (Cs_workloads.Prog.reduce b Cs_ddg.Opcode.Add []))

let test_prog_chain_length () =
  let b = Cs_ddg.Builder.create ~name:"c" () in
  let seed = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _tip = Cs_workloads.Prog.chain b Cs_ddg.Opcode.Add ~length:5 seed in
  let region = Cs_ddg.Builder.finish b in
  (* seed + 5 * (const + add) = 11 instructions, CPL 6 with unit latency. *)
  check_int "instrs" 11 (Cs_ddg.Region.n_instrs region);
  let a = Cs_ddg.Analysis.make ~latency:(fun _ -> 1) region.Cs_ddg.Region.graph in
  check_int "cpl" 6 (Cs_ddg.Analysis.cpl a)

let test_prog_banked_load_preplaces () =
  let b = Cs_ddg.Builder.create ~name:"bl" () in
  let congruence = Cs_workloads.Congruence.interleaved ~n_banks:4 in
  let _v = Cs_workloads.Prog.banked_load b ~congruence ~index:6 () in
  let region = Cs_ddg.Builder.finish b in
  Alcotest.(check (list (pair int int))) "load on bank 2" [ (1, 2) ]
    (Cs_ddg.Graph.preplaced region.Cs_ddg.Region.graph)

(* --- Suites --- *)

let test_suites_membership () =
  check_int "raw suite size" 9 (List.length Cs_workloads.Suite.raw_suite);
  check_int "vliw suite size" 7 (List.length Cs_workloads.Suite.vliw_suite);
  check_bool "find jacobi" true (Cs_workloads.Suite.find "jacobi" <> None);
  check_bool "find case-insensitive" true (Cs_workloads.Suite.find "JACOBI" <> None);
  check_bool "find missing" true (Cs_workloads.Suite.find "nonesuch" = None)

let test_all_no_duplicates () =
  let names = List.map (fun e -> e.Cs_workloads.Suite.name) Cs_workloads.Suite.all in
  check_int "unique" (List.length names) (List.length (List.sort_uniq compare names))

let machines_of clusters =
  if clusters = 1 then Cs_machine.Raw.with_tiles 1
  else Cs_machine.Raw.with_tiles clusters

let test_every_benchmark_validates () =
  List.iter
    (fun entry ->
      List.iter
        (fun clusters ->
          let region = entry.Cs_workloads.Suite.generate ~clusters () in
          match Cs_machine.Machine.validate_region (machines_of clusters) region with
          | Ok () -> ()
          | Error msg ->
            Alcotest.failf "%s @ %d clusters: %s" entry.Cs_workloads.Suite.name clusters msg)
        [ 1; 2; 4; 16 ])
    Cs_workloads.Suite.all

let test_generators_deterministic () =
  List.iter
    (fun entry ->
      let r1 = entry.Cs_workloads.Suite.generate ~clusters:4 () in
      let r2 = entry.Cs_workloads.Suite.generate ~clusters:4 () in
      check_int (entry.Cs_workloads.Suite.name ^ " same size")
        (Cs_ddg.Region.n_instrs r1) (Cs_ddg.Region.n_instrs r2);
      let s1 = Format.asprintf "%a" Cs_ddg.Graph.pp r1.Cs_ddg.Region.graph in
      let s2 = Format.asprintf "%a" Cs_ddg.Graph.pp r2.Cs_ddg.Region.graph in
      check_bool (entry.Cs_workloads.Suite.name ^ " identical") true (s1 = s2))
    Cs_workloads.Suite.all

let test_size_independent_of_clusters () =
  List.iter
    (fun entry ->
      let n1 = Cs_ddg.Region.n_instrs (entry.Cs_workloads.Suite.generate ~clusters:1 ()) in
      let n16 = Cs_ddg.Region.n_instrs (entry.Cs_workloads.Suite.generate ~clusters:16 ()) in
      check_int (entry.Cs_workloads.Suite.name ^ " same program") n1 n16)
    Cs_workloads.Suite.all

let test_scale_grows () =
  List.iter
    (fun entry ->
      let n1 = Cs_ddg.Region.n_instrs (entry.Cs_workloads.Suite.generate ~scale:1 ~clusters:4 ()) in
      let n2 = Cs_ddg.Region.n_instrs (entry.Cs_workloads.Suite.generate ~scale:2 ~clusters:4 ()) in
      check_bool (entry.Cs_workloads.Suite.name ^ " scales") true (n2 > n1))
    Cs_workloads.Suite.all

let density name clusters =
  Cs_ddg.Region.preplacement_density
    ((Option.get (Cs_workloads.Suite.find name)).Cs_workloads.Suite.generate ~clusters ())

let test_preplacement_density_profile () =
  (* Paper Sec. 5: dense-matrix benchmarks carry congruence preplacement;
     fpppp-kernel and sha effectively none. *)
  check_bool "jacobi dense" true (density "jacobi" 16 > 0.3);
  check_bool "vvmul dense" true (density "vvmul" 4 > 0.3);
  check_bool "mxm dense" true (density "mxm" 4 > 0.3);
  Alcotest.(check (float 1e-9)) "fpppp none" 0.0 (density "fpppp-kernel" 16);
  Alcotest.(check (float 1e-9)) "sha none" 0.0 (density "sha" 16)

let test_banks_span_all_clusters () =
  List.iter
    (fun name ->
      let entry = Option.get (Cs_workloads.Suite.find name) in
      let region = entry.Cs_workloads.Suite.generate ~clusters:4 () in
      let banks =
        Cs_ddg.Graph.preplaced region.Cs_ddg.Region.graph
        |> List.map snd |> List.sort_uniq Int.compare
      in
      check_int (name ^ " all banks used") 4 (List.length banks))
    [ "jacobi"; "mxm"; "vvmul"; "swim"; "tomcatv"; "life"; "vpenta" ]

(* --- Shapes --- *)

let test_shape_thin_is_narrow () =
  let region = Cs_workloads.Shapes.thin ~seed:3 () in
  let a = Cs_ddg.Analysis.make ~latency:(fun _ -> 1) region.Cs_ddg.Region.graph in
  let n = Cs_ddg.Region.n_instrs region in
  (* CPL comparable to n / chains: long and narrow. *)
  check_bool "narrow" true (Cs_ddg.Analysis.cpl a * 6 > n)

let test_shape_fat_is_wide () =
  let region = Cs_workloads.Shapes.fat ~seed:3 () in
  let a = Cs_ddg.Analysis.make ~latency:(fun _ -> 1) region.Cs_ddg.Region.graph in
  check_bool "wide" true (Cs_ddg.Analysis.cpl a < 8)

let test_shape_layered_size () =
  List.iter
    (fun n ->
      let region = Cs_workloads.Shapes.layered ~n ~seed:5 () in
      let got = Cs_ddg.Region.n_instrs region in
      check_bool "close to target" true (got <= n + 2 && got >= (n * 7) / 10))
    [ 50; 200; 800 ]

let test_shape_layered_acyclic_and_valid () =
  let congruence = Cs_workloads.Congruence.interleaved ~n_banks:4 in
  let region = Cs_workloads.Shapes.layered ~n:300 ~congruence ~seed:9 () in
  match Cs_machine.Machine.validate_region (Cs_machine.Vliw.create ()) region with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_shape_layered_deterministic () =
  let r1 = Cs_workloads.Shapes.layered ~n:100 ~seed:4 () in
  let r2 = Cs_workloads.Shapes.layered ~n:100 ~seed:4 () in
  check_int "same" (Cs_ddg.Region.n_instrs r1) (Cs_ddg.Region.n_instrs r2)

let () =
  Alcotest.run "cs_workloads"
    [
      ( "congruence",
        [
          Alcotest.test_case "interleaved" `Quick test_congruence_interleaved;
          Alcotest.test_case "blocked" `Quick test_congruence_blocked;
          Alcotest.test_case "unanalyzable" `Quick test_congruence_unanalyzable;
          Alcotest.test_case "rejects bad" `Quick test_congruence_rejects_bad;
        ] );
      ( "prog",
        [
          Alcotest.test_case "reduce balanced" `Quick test_prog_reduce_balanced;
          Alcotest.test_case "reduce empty" `Quick test_prog_reduce_empty_rejected;
          Alcotest.test_case "chain length" `Quick test_prog_chain_length;
          Alcotest.test_case "banked load" `Quick test_prog_banked_load_preplaces;
        ] );
      ( "suite",
        [
          Alcotest.test_case "membership" `Quick test_suites_membership;
          Alcotest.test_case "no duplicates" `Quick test_all_no_duplicates;
          Alcotest.test_case "all validate" `Quick test_every_benchmark_validates;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "size cluster-independent" `Quick test_size_independent_of_clusters;
          Alcotest.test_case "scale grows" `Quick test_scale_grows;
          Alcotest.test_case "density profile" `Quick test_preplacement_density_profile;
          Alcotest.test_case "banks span clusters" `Quick test_banks_span_all_clusters;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "thin narrow" `Quick test_shape_thin_is_narrow;
          Alcotest.test_case "fat wide" `Quick test_shape_fat_is_wide;
          Alcotest.test_case "layered size" `Quick test_shape_layered_size;
          Alcotest.test_case "layered valid" `Quick test_shape_layered_acyclic_and_valid;
          Alcotest.test_case "layered deterministic" `Quick test_shape_layered_deterministic;
        ] );
    ]
