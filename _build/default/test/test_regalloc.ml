(* Tests for register pressure analysis and linear scan. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vliw2 = Cs_machine.Vliw.create ~n_clusters:2 ()

let schedule ?assignment region =
  let a =
    Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of vliw2)
      region.Cs_ddg.Region.graph
  in
  let n = Cs_ddg.Graph.n region.Cs_ddg.Region.graph in
  let assignment = match assignment with Some x -> x | None -> Array.make n 0 in
  Cs_sched.List_scheduler.run ~machine:vliw2 ~assignment
    ~priority:(Cs_sched.Priority.alap a) ~analysis:a region

(* k parallel consts all consumed by one reduction at the end: pressure
   grows to ~k on the defining cluster. *)
let wide_region k =
  let b = Cs_ddg.Builder.create ~name:"wide" () in
  let defs = List.init k (fun _ -> Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const) in
  let _sum = Cs_workloads.Prog.reduce b Cs_ddg.Opcode.Add defs in
  Cs_ddg.Builder.finish b

let test_intervals_cover_defs () =
  let sched = schedule (wide_region 4) in
  let ivs = Cs_regalloc.Pressure.intervals sched in
  (* Every value-producing instruction has at least one interval. *)
  let producers = List.sort_uniq Int.compare (List.map (fun iv -> iv.Cs_regalloc.Pressure.producer) ivs) in
  let expected =
    Array.to_list (Cs_ddg.Graph.instrs sched.Cs_sched.Schedule.graph)
    |> List.filter (fun i -> i.Cs_ddg.Instr.dst <> None)
    |> List.map (fun i -> i.Cs_ddg.Instr.id)
  in
  Alcotest.(check (list int)) "all producers" expected producers

let test_interval_order () =
  let sched = schedule (wide_region 4) in
  List.iter
    (fun iv ->
      check_bool "death >= birth" true Cs_regalloc.Pressure.(iv.death >= iv.birth))
    (Cs_regalloc.Pressure.intervals sched)

let test_peak_grows_with_width () =
  let narrow = Cs_regalloc.Pressure.max_peak (schedule (wide_region 2)) in
  let wide = Cs_regalloc.Pressure.max_peak (schedule (wide_region 12)) in
  check_bool "wider = more pressure" true (wide > narrow)

let test_peak_on_unused_cluster_zero () =
  let sched = schedule (wide_region 4) in
  let peaks = Cs_regalloc.Pressure.peak sched in
  check_int "cluster 1 idle" 0 peaks.(1)

let test_transfer_creates_remote_interval () =
  let b = Cs_ddg.Builder.create ~name:"xfer" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let _u = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k in
  let region = Cs_ddg.Builder.finish b in
  let sched = schedule ~assignment:[| 0; 1 |] region in
  let ivs = Cs_regalloc.Pressure.intervals sched in
  check_bool "interval on cluster 1" true
    (List.exists (fun iv -> iv.Cs_regalloc.Pressure.cluster = 1) ivs)

let test_no_spills_with_ample_registers () =
  let result = Cs_regalloc.Linear_scan.run ~registers:64 (schedule (wide_region 8)) in
  check_int "no spills" 0 result.Cs_regalloc.Linear_scan.total_spills

let test_spills_when_registers_scarce () =
  let result = Cs_regalloc.Linear_scan.run ~registers:2 (schedule (wide_region 12)) in
  check_bool "spills occur" true (result.Cs_regalloc.Linear_scan.total_spills > 0);
  check_bool "penalty positive" true (result.Cs_regalloc.Linear_scan.spill_penalty_cycles > 0)

let test_spill_penalty_formula () =
  let result = Cs_regalloc.Linear_scan.run ~registers:1 (schedule (wide_region 6)) in
  let per_spill =
    Cs_machine.Latency.r4000 Cs_ddg.Opcode.Store + Cs_machine.Latency.r4000 Cs_ddg.Opcode.Load
  in
  check_int "penalty = spills * (st+ld)"
    (result.Cs_regalloc.Linear_scan.total_spills * per_spill)
    result.Cs_regalloc.Linear_scan.spill_penalty_cycles

let test_spills_per_cluster_sums () =
  let result = Cs_regalloc.Linear_scan.run ~registers:2 (schedule (wide_region 10)) in
  check_int "sum matches"
    result.Cs_regalloc.Linear_scan.total_spills
    (Array.fold_left ( + ) 0 result.Cs_regalloc.Linear_scan.spills_per_cluster)

let () =
  Alcotest.run "cs_regalloc"
    [
      ( "pressure",
        [
          Alcotest.test_case "intervals cover defs" `Quick test_intervals_cover_defs;
          Alcotest.test_case "interval order" `Quick test_interval_order;
          Alcotest.test_case "peak grows" `Quick test_peak_grows_with_width;
          Alcotest.test_case "idle cluster zero" `Quick test_peak_on_unused_cluster_zero;
          Alcotest.test_case "remote interval" `Quick test_transfer_creates_remote_interval;
        ] );
      ( "linear_scan",
        [
          Alcotest.test_case "ample registers" `Quick test_no_spills_with_ample_registers;
          Alcotest.test_case "scarce registers" `Quick test_spills_when_registers_scarce;
          Alcotest.test_case "penalty formula" `Quick test_spill_penalty_formula;
          Alcotest.test_case "per-cluster sums" `Quick test_spills_per_cluster_sums;
        ] );
    ]
