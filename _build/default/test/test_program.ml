(* Tests for the semantic interpreter, iterative driver, and multi-region
   program compilation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vliw4 = Cs_machine.Vliw.create ~n_clusters:4 ()
let raw4 = Cs_machine.Raw.with_tiles 4

(* --- Interp --- *)

let jacobi4 = Cs_workloads.Jacobi.generate ~clusters:4 ()

let test_reference_covers_all_defs () =
  let env = Cs_sim.Interp.reference jacobi4 in
  Array.iter
    (fun ins ->
      match ins.Cs_ddg.Instr.dst with
      | Some r -> check_bool "defined" true (Cs_ddg.Reg.Map.mem r env)
      | None -> ())
    (Cs_ddg.Graph.instrs jacobi4.Cs_ddg.Region.graph)

let test_reference_deterministic () =
  let a = Cs_sim.Interp.reference jacobi4 and b = Cs_sim.Interp.reference jacobi4 in
  check_bool "equal" true (Cs_ddg.Reg.Map.equal Int64.equal a b)

let test_schedules_semantically_equivalent () =
  List.iter
    (fun machine ->
      List.iter
        (fun scheduler ->
          let sched = Cs_sim.Pipeline.schedule ~scheduler ~machine jacobi4 in
          match Cs_sim.Interp.equivalent jacobi4 sched with
          | Ok () -> ()
          | Error msg ->
            Alcotest.failf "%s on %s: %s"
              (Cs_sim.Pipeline.scheduler_name scheduler)
              machine.Cs_machine.Machine.name msg)
        Cs_sim.Pipeline.all_schedulers)
    [ raw4; vliw4 ]

let test_interp_catches_tampered_schedule () =
  let sched = Cs_sim.Pipeline.schedule ~scheduler:Cs_sim.Pipeline.Uas ~machine:vliw4 jacobi4 in
  (* Strip all transfers: cross-cluster reads become undeliverable. *)
  let bad = { sched with Cs_sched.Schedule.comms = [] } in
  check_bool "detected" true
    (match Cs_sim.Interp.of_schedule bad with
    | Error _ -> true
    | Ok _ -> Cs_sched.Schedule.n_comms sched = 0)

let test_interp_live_in_homes_respected () =
  let b = Cs_ddg.Builder.create ~name:"li" () in
  let x = Cs_ddg.Builder.live_in ~home:1 b in
  let _y = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd x in
  let region = Cs_ddg.Builder.finish b in
  let analysis =
    Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of vliw4)
      region.Cs_ddg.Region.graph
  in
  (* Consumer away from the live-in's home: transfer synthesized. *)
  let sched =
    Cs_sched.List_scheduler.run ~machine:vliw4 ~assignment:[| 3 |]
      ~priority:(Cs_sched.Priority.alap analysis) ~analysis region
  in
  check_int "one transfer" 1 (Cs_sched.Schedule.n_comms sched);
  check_bool "valid" true (Cs_sched.Validator.check sched = Ok ());
  check_bool "equivalent" true (Cs_sim.Interp.equivalent region sched = Ok ());
  (* Consumer starts no earlier than the crossbar latency. *)
  check_bool "waits for arrival" true
    (sched.Cs_sched.Schedule.entries.(0).Cs_sched.Schedule.start >= 1)

let test_validator_rejects_missing_live_in_delivery () =
  let b = Cs_ddg.Builder.create ~name:"li2" () in
  let x = Cs_ddg.Builder.live_in ~home:0 b in
  let _y = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd x in
  let region = Cs_ddg.Builder.finish b in
  let analysis =
    Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of vliw4)
      region.Cs_ddg.Region.graph
  in
  let sched =
    Cs_sched.List_scheduler.run ~machine:vliw4 ~assignment:[| 2 |]
      ~priority:(Cs_sched.Priority.alap analysis) ~analysis region
  in
  let bad = { sched with Cs_sched.Schedule.comms = [] } in
  check_bool "rejected" true
    (match Cs_sched.Validator.check bad with Error _ -> true | Ok () -> false)

(* --- run_iterative --- *)

let test_iterative_terminates_and_converges () =
  let result, rounds =
    Cs_core.Driver.run_iterative ~machine:vliw4 jacobi4 (Cs_core.Sequence.vliw_default ())
  in
  check_bool "at least one round" true (rounds >= 1);
  check_bool "bounded" true (rounds <= 5);
  check_int "trace covers all rounds"
    (rounds * List.length (Cs_core.Sequence.vliw_default ()))
    (List.length result.Cs_core.Driver.trace)

let test_iterative_no_worse_than_single () =
  let machine = vliw4 in
  let run f =
    let result = f () in
    let analysis = result.Cs_core.Driver.context.Cs_core.Context.analysis in
    let sched =
      Cs_sched.List_scheduler.run ~machine ~assignment:result.Cs_core.Driver.assignment
        ~priority:(Cs_sched.Priority.of_slots result.Cs_core.Driver.preferred_slot)
        ~analysis jacobi4
    in
    Cs_sched.Schedule.makespan sched
  in
  let single = run (fun () -> Cs_core.Driver.run ~machine jacobi4 (Cs_core.Sequence.vliw_default ())) in
  let iterated =
    run (fun () ->
        fst (Cs_core.Driver.run_iterative ~machine jacobi4 (Cs_core.Sequence.vliw_default ())))
  in
  (* Iteration is allowed to change the result but must stay sane. *)
  check_bool "within 25% of single run" true
    (float_of_int iterated <= 1.25 *. float_of_int single)

let test_iterative_epsilon_one_stops_after_first_round () =
  let _result, rounds =
    Cs_core.Driver.run_iterative ~epsilon:1.1 ~machine:vliw4 jacobi4
      (Cs_core.Sequence.vliw_default ())
  in
  check_int "one round" 1 rounds

(* --- Program (multi-region) --- *)

let test_program_validate_ok () =
  let program = Cs_sim.Program.sha_rounds ~blocks:3 () in
  check_bool "valid" true (Cs_sim.Program.validate program = Ok ())

let test_program_validate_rejects_unknown_import () =
  let b = Cs_ddg.Builder.create ~name:"b0" () in
  let x = Cs_ddg.Builder.live_in b in
  let _y = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fadd x in
  let region = Cs_ddg.Builder.finish b in
  let program =
    { Cs_sim.Program.name = "bad";
      blocks = [ { Cs_sim.Program.label = "b0"; region; exports = []; imports = [ ("ghost", x) ] } ] }
  in
  check_bool "rejected" true
    (match Cs_sim.Program.validate program with Error _ -> true | Ok () -> false)

let test_program_blocks_share_instruction_total () =
  let one = Cs_sim.Program.sha_rounds ~blocks:1 () in
  let four = Cs_sim.Program.sha_rounds ~blocks:4 () in
  let count p =
    List.fold_left
      (fun acc b -> acc + Cs_ddg.Region.n_instrs b.Cs_sim.Program.region)
      0 p.Cs_sim.Program.blocks
  in
  check_int "same computation" (count one) (count four)

let test_program_chorus_homes_on_cluster_zero () =
  let program = Cs_sim.Program.sha_rounds ~blocks:3 () in
  let result =
    Cs_sim.Program.schedule ~scheduler:Cs_sim.Pipeline.Convergent ~machine:vliw4 program
  in
  check_int "three schedules" 3 (List.length result.Cs_sim.Program.schedules);
  List.iter (fun (_, home) -> check_int "cluster 0" 0 home) result.Cs_sim.Program.homes;
  check_bool "cycles positive" true (result.Cs_sim.Program.total_cycles > 0)

let test_program_raw_homes_follow_definitions () =
  let program = Cs_sim.Program.sha_rounds ~blocks:3 () in
  let result =
    Cs_sim.Program.schedule ~scheduler:Cs_sim.Pipeline.Rawcc ~machine:raw4 program
  in
  (* Homes must be actual clusters of the defining instructions. *)
  List.iteri
    (fun k sched ->
      let block = List.nth program.Cs_sim.Program.blocks k in
      List.iter
        (fun (name, r) ->
          match Cs_ddg.Graph.defining_instr sched.Cs_sched.Schedule.graph r with
          | Some d ->
            let cluster = sched.Cs_sched.Schedule.entries.(d).Cs_sched.Schedule.cluster in
            check_int (name ^ " home") cluster (List.assoc name result.Cs_sim.Program.homes)
          | None -> Alcotest.fail "export without definition")
        block.Cs_sim.Program.exports)
    result.Cs_sim.Program.schedules

let test_program_every_block_validated_and_equivalent () =
  let program = Cs_sim.Program.sha_rounds ~blocks:4 () in
  let result =
    Cs_sim.Program.schedule ~scheduler:Cs_sim.Pipeline.Uas ~machine:vliw4 program
  in
  List.iteri
    (fun k sched ->
      let block = List.nth program.Cs_sim.Program.blocks k in
      (* Rebuild the homed region the scheduler saw for the semantic check. *)
      let region =
        { block.Cs_sim.Program.region with
          Cs_ddg.Region.live_in_homes = sched.Cs_sched.Schedule.live_in_homes }
      in
      match Cs_sim.Interp.equivalent region sched with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "block %d: %s" k msg)
    result.Cs_sim.Program.schedules

let () =
  Alcotest.run "cs_sim.program"
    [
      ( "interp",
        [
          Alcotest.test_case "reference covers defs" `Quick test_reference_covers_all_defs;
          Alcotest.test_case "reference deterministic" `Quick test_reference_deterministic;
          Alcotest.test_case "all schedulers equivalent" `Slow test_schedules_semantically_equivalent;
          Alcotest.test_case "catches tampering" `Quick test_interp_catches_tampered_schedule;
          Alcotest.test_case "live-in homes" `Quick test_interp_live_in_homes_respected;
          Alcotest.test_case "validator live-in" `Quick test_validator_rejects_missing_live_in_delivery;
        ] );
      ( "iterative",
        [
          Alcotest.test_case "terminates" `Quick test_iterative_terminates_and_converges;
          Alcotest.test_case "no worse than single" `Quick test_iterative_no_worse_than_single;
          Alcotest.test_case "epsilon stops" `Quick test_iterative_epsilon_one_stops_after_first_round;
        ] );
      ( "program",
        [
          Alcotest.test_case "validate ok" `Quick test_program_validate_ok;
          Alcotest.test_case "rejects unknown import" `Quick test_program_validate_rejects_unknown_import;
          Alcotest.test_case "same computation" `Quick test_program_blocks_share_instruction_total;
          Alcotest.test_case "chorus homes" `Quick test_program_chorus_homes_on_cluster_zero;
          Alcotest.test_case "raw homes" `Quick test_program_raw_homes_follow_definitions;
          Alcotest.test_case "blocks equivalent" `Quick test_program_every_block_validated_and_equivalent;
        ] );
    ]
