(* End-to-end tests: pipelines, speedups, convergence traces, and the
   paper's headline qualitative results at small scale. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let entry name = Option.get (Cs_workloads.Suite.find name)

let test_every_scheduler_validates_everywhere () =
  (* Pipeline.schedule validates internally; exercise the matrix of
     machines x schedulers x a representative workload. *)
  let machines = [ Cs_machine.Raw.with_tiles 4; Cs_machine.Vliw.create ~n_clusters:4 () ] in
  let region = (entry "jacobi").Cs_workloads.Suite.generate ~clusters:4 () in
  List.iter
    (fun machine ->
      List.iter
        (fun scheduler ->
          let sched = Cs_sim.Pipeline.schedule ~scheduler ~machine region in
          check_bool
            (Cs_sim.Pipeline.scheduler_name scheduler ^ " makespan positive")
            true
            (Cs_sched.Schedule.makespan sched > 0))
        Cs_sim.Pipeline.all_schedulers)
    machines

let test_scheduler_names_roundtrip () =
  List.iter
    (fun s ->
      check_bool "roundtrip" true
        (Cs_sim.Pipeline.scheduler_of_name (Cs_sim.Pipeline.scheduler_name s) = Some s))
    Cs_sim.Pipeline.all_schedulers;
  check_bool "unknown" true (Cs_sim.Pipeline.scheduler_of_name "nope" = None)

let test_convergent_trace_returned () =
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let region = (entry "yuv").Cs_workloads.Suite.generate ~clusters:4 () in
  let _sched, trace = Cs_sim.Pipeline.convergent ~machine region in
  check_int "trace steps" (List.length (Cs_core.Sequence.vliw_default ())) (List.length trace)

let test_convergent_custom_passes () =
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let region = (entry "yuv").Cs_workloads.Suite.generate ~clusters:4 () in
  let passes = [ Cs_core.Inittime.pass (); Cs_core.Place.pass (); Cs_core.Placeprop.pass () ] in
  let sched, trace = Cs_sim.Pipeline.convergent ~passes ~machine region in
  check_int "3 steps" 3 (List.length trace);
  check_bool "valid" true (Cs_sched.Validator.check sched = Ok ())

let test_speedup_raw_monotone_data () =
  let m = Cs_sim.Speedup.on_raw ~scheduler:Cs_sim.Pipeline.Convergent ~tiles:4 (entry "mxm") in
  check_bool "speedup > 1.5 on fat code" true (m.Cs_sim.Speedup.speedup > 1.5);
  check_bool "baseline >= n" true
    (m.Cs_sim.Speedup.baseline_cycles >= m.Cs_sim.Speedup.n_instrs)

let test_speedup_vliw_positive () =
  let m = Cs_sim.Speedup.on_vliw ~scheduler:Cs_sim.Pipeline.Uas ~clusters:4 (entry "vvmul") in
  check_bool "speedup > 2" true (m.Cs_sim.Speedup.speedup > 2.0)

let test_speedup_single_cluster_is_one () =
  let m = Cs_sim.Speedup.on_raw ~scheduler:Cs_sim.Pipeline.Rawcc ~tiles:1 (entry "jacobi") in
  Alcotest.(check (float 1e-9)) "speedup 1" 1.0 m.Cs_sim.Speedup.speedup

(* The paper's headline qualitative results, at reduced scale:
   convergent beats the Rawcc baseline on preplacement-rich code and
   beats UAS on the VLIW suite on average; PCC/UAS/convergent all lose
   to convergent's average on the paper's metrics. *)

let test_convergent_beats_rawcc_on_mxm () =
  let c = Cs_sim.Speedup.on_raw ~scheduler:Cs_sim.Pipeline.Convergent ~tiles:16 (entry "mxm") in
  let r = Cs_sim.Speedup.on_raw ~scheduler:Cs_sim.Pipeline.Rawcc ~tiles:16 (entry "mxm") in
  check_bool "convergent wins" true (c.Cs_sim.Speedup.speedup > r.Cs_sim.Speedup.speedup)

let test_convergent_beats_rawcc_on_cholesky () =
  let c = Cs_sim.Speedup.on_raw ~scheduler:Cs_sim.Pipeline.Convergent ~tiles:16 (entry "cholesky") in
  let r = Cs_sim.Speedup.on_raw ~scheduler:Cs_sim.Pipeline.Rawcc ~tiles:16 (entry "cholesky") in
  check_bool "convergent wins" true (c.Cs_sim.Speedup.speedup > r.Cs_sim.Speedup.speedup)

let test_rawcc_beats_convergent_on_sha () =
  (* Paper Sec. 5: "For fpppp-kernel and sha, convergent scheduling
     performs worse than baseline Rawcc". *)
  let c = Cs_sim.Speedup.on_raw ~scheduler:Cs_sim.Pipeline.Convergent ~tiles:16 (entry "sha") in
  let r = Cs_sim.Speedup.on_raw ~scheduler:Cs_sim.Pipeline.Rawcc ~tiles:16 (entry "sha") in
  check_bool "rawcc wins on sha" true (r.Cs_sim.Speedup.speedup >= c.Cs_sim.Speedup.speedup)

let test_convergent_beats_uas_on_average_vliw () =
  let ratios =
    List.map
      (fun e ->
        let c = Cs_sim.Speedup.on_vliw ~scheduler:Cs_sim.Pipeline.Convergent ~clusters:4 e in
        let u = Cs_sim.Speedup.on_vliw ~scheduler:Cs_sim.Pipeline.Uas ~clusters:4 e in
        c.Cs_sim.Speedup.speedup /. u.Cs_sim.Speedup.speedup)
      Cs_workloads.Suite.vliw_suite
  in
  check_bool "average ratio > 1" true (Cs_util.Stats.mean ratios > 1.0)

let test_compile_time_sweep_shape () =
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let points =
    Cs_sim.Compile_time.sweep ~sizes:[ 50; 100 ] ~scheduler:Cs_sim.Pipeline.Convergent
      ~machine ()
  in
  check_int "two points" 2 (List.length points);
  List.iter
    (fun p ->
      check_bool "nonnegative time" true (p.Cs_sim.Compile_time.seconds >= 0.0);
      check_bool "size recorded" true (p.Cs_sim.Compile_time.n_instrs > 0))
    points

let test_pcc_slower_than_uas () =
  (* Fig. 10's qualitative claim at small scale. *)
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let region = Cs_workloads.Shapes.layered ~n:400 ~seed:2
      ~congruence:(Cs_workloads.Congruence.interleaved ~n_banks:4) () in
  let t_pcc = Cs_sim.Compile_time.time_scheduler ~scheduler:Cs_sim.Pipeline.Pcc ~machine region in
  let t_uas = Cs_sim.Compile_time.time_scheduler ~scheduler:Cs_sim.Pipeline.Uas ~machine region in
  check_bool "pcc slower" true (t_pcc > t_uas)

let test_trace_dense_converges_early () =
  (* Fig. 7's qualitative claim: with useful preplacement, later passes
     change fewer preferred tiles than the early placement passes. *)
  let machine = Cs_machine.Raw.with_tiles 16 in
  let region = (entry "jacobi").Cs_workloads.Suite.generate ~clusters:16 () in
  let _sched, trace = Cs_sim.Pipeline.convergent ~machine region in
  let space = Cs_core.Trace.space_steps trace in
  let early = List.hd space in
  let late = List.nth space (List.length space - 1) in
  check_bool "early changes most" true
    (Cs_core.Trace.changed_fraction early >= Cs_core.Trace.changed_fraction late)

let () =
  Alcotest.run "cs_sim"
    [
      ( "pipeline",
        [
          Alcotest.test_case "matrix validates" `Slow test_every_scheduler_validates_everywhere;
          Alcotest.test_case "names roundtrip" `Quick test_scheduler_names_roundtrip;
          Alcotest.test_case "trace returned" `Quick test_convergent_trace_returned;
          Alcotest.test_case "custom passes" `Quick test_convergent_custom_passes;
        ] );
      ( "speedup",
        [
          Alcotest.test_case "raw mxm" `Quick test_speedup_raw_monotone_data;
          Alcotest.test_case "vliw vvmul" `Quick test_speedup_vliw_positive;
          Alcotest.test_case "single cluster = 1" `Quick test_speedup_single_cluster_is_one;
        ] );
      ( "paper-claims",
        [
          Alcotest.test_case "conv > rawcc on mxm" `Slow test_convergent_beats_rawcc_on_mxm;
          Alcotest.test_case "conv > rawcc on cholesky" `Slow test_convergent_beats_rawcc_on_cholesky;
          Alcotest.test_case "rawcc > conv on sha" `Slow test_rawcc_beats_convergent_on_sha;
          Alcotest.test_case "conv > uas avg (vliw)" `Slow test_convergent_beats_uas_on_average_vliw;
          Alcotest.test_case "dense converges early" `Slow test_trace_dense_converges_early;
        ] );
      ( "compile-time",
        [
          Alcotest.test_case "sweep shape" `Slow test_compile_time_sweep_shape;
          Alcotest.test_case "pcc slower" `Slow test_pcc_slower_than_uas;
        ] );
    ]
