(* Tests for the baseline schedulers: Rawcc, UAS, PCC, BUG. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vliw4 = Cs_machine.Vliw.create ~n_clusters:4 ()
let raw4 = Cs_machine.Raw.with_tiles 4

let jacobi clusters = Cs_workloads.Jacobi.generate ~clusters ()
let mxm clusters = Cs_workloads.Mxm.generate ~clusters ()
let sha () = Cs_workloads.Sha.generate ~clusters:4 ()

let preplaced_respected region assignment =
  List.for_all
    (fun (i, home) -> assignment.(i) = home)
    (Cs_ddg.Graph.preplaced region.Cs_ddg.Region.graph)

(* --- Rawcc --- *)

let test_rawcc_schedule_valid () =
  let region = jacobi 4 in
  let sched = Cs_baselines.Rawcc.schedule ~machine:raw4 region in
  Cs_sched.Validator.check_exn sched

let test_rawcc_respects_preplacement () =
  let region = jacobi 4 in
  let assignment = Cs_baselines.Rawcc.assign ~machine:raw4 region in
  check_bool "homes kept" true (preplaced_respected region assignment)

let test_rawcc_uses_multiple_tiles () =
  let region = mxm 4 in
  let assignment = Cs_baselines.Rawcc.assign ~machine:raw4 region in
  let used = List.sort_uniq Int.compare (Array.to_list assignment) in
  check_bool "parallel work spread" true (List.length used >= 3)

let test_rawcc_single_cluster () =
  let region = jacobi 1 in
  let machine = Cs_machine.Raw.with_tiles 1 in
  let sched = Cs_baselines.Rawcc.schedule ~machine region in
  Cs_sched.Validator.check_exn sched;
  check_bool "at least n cycles" true
    (Cs_sched.Schedule.makespan sched >= Cs_ddg.Region.n_instrs region)

(* --- UAS --- *)

let test_uas_schedule_valid_vliw () =
  let sched = Cs_baselines.Uas.schedule ~machine:vliw4 (jacobi 4) in
  Cs_sched.Validator.check_exn sched

let test_uas_schedule_valid_raw () =
  let sched = Cs_baselines.Uas.schedule ~machine:raw4 (jacobi 4) in
  Cs_sched.Validator.check_exn sched

let test_uas_respects_preplacement_on_mesh () =
  let region = jacobi 4 in
  let assignment = Cs_baselines.Uas.assign ~machine:raw4 region in
  check_bool "homes kept" true (preplaced_respected region assignment)

let test_uas_spreads_parallel_work () =
  let assignment = Cs_baselines.Uas.assign ~machine:vliw4 (mxm 4) in
  let used = List.sort_uniq Int.compare (Array.to_list assignment) in
  check_int "all clusters used" 4 (List.length used)

(* --- PCC --- *)

let test_pcc_components_cover_all () =
  let region = jacobi 4 in
  let comps = Cs_baselines.Pcc.components ~machine:vliw4 ~theta:4 region in
  let members = List.concat comps |> List.sort Int.compare in
  Alcotest.(check (list int)) "partition"
    (List.init (Cs_ddg.Region.n_instrs region) (fun i -> i))
    members

let test_pcc_components_capped () =
  let comps = Cs_baselines.Pcc.components ~machine:vliw4 ~theta:4 (jacobi 4) in
  List.iter (fun c -> check_bool "size <= theta" true (List.length c <= 4)) comps

let test_pcc_components_pin_consistent () =
  (* On a mesh pins are hard, so components must never mix homes. *)
  let region = jacobi 4 in
  let graph = region.Cs_ddg.Region.graph in
  let comps = Cs_baselines.Pcc.components ~machine:raw4 ~theta:6 region in
  List.iter
    (fun comp ->
      let pins =
        List.filter_map
          (fun i -> (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.preplace)
          comp
        |> List.sort_uniq Int.compare
      in
      check_bool "at most one pin per component" true (List.length pins <= 1))
    comps

let test_pcc_schedule_valid () =
  let sched = Cs_baselines.Pcc.schedule ~machine:vliw4 (jacobi 4) in
  Cs_sched.Validator.check_exn sched

let test_pcc_descent_does_not_regress () =
  let region = mxm 4 in
  let analysis = Cs_baselines.Estimator.analysis_for ~machine:vliw4 region in
  ignore analysis;
  let quick = Cs_baselines.Pcc.schedule ~max_rounds:0 ~machine:vliw4 region in
  let refined = Cs_baselines.Pcc.schedule ~max_rounds:3 ~machine:vliw4 region in
  check_bool "descent no worse" true
    (Cs_sched.Schedule.makespan refined <= Cs_sched.Schedule.makespan quick)

let test_pcc_respects_preplacement_on_mesh () =
  (* On meshes pinning is hard; on the VLIW the paper's PCC handles
     preplacement through the estimator's remote-access penalty instead,
     so only the mesh case guarantees home placement. *)
  let region = jacobi 4 in
  let assignment = Cs_baselines.Pcc.assign ~machine:raw4 region in
  check_bool "homes kept" true (preplaced_respected region assignment)

let test_pcc_vliw_schedule_still_legal_with_remote_memory () =
  let region = jacobi 4 in
  let sched = Cs_baselines.Pcc.schedule ~machine:vliw4 region in
  Cs_sched.Validator.check_exn sched

(* --- BUG --- *)

let test_bug_schedule_valid () =
  let sched = Cs_baselines.Bug.schedule ~machine:vliw4 (jacobi 4) in
  Cs_sched.Validator.check_exn sched

let test_bug_respects_preplacement_on_mesh () =
  let region = jacobi 4 in
  let assignment = Cs_baselines.Bug.assign ~machine:raw4 region in
  check_bool "homes kept" true (preplaced_respected region assignment)

let test_bug_desire_propagates () =
  (* A chain ending in a preplaced store should be drawn to its bank. *)
  let b = Cs_ddg.Builder.create ~name:"desire" () in
  let k = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  let x = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Add k in
  let addr = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
  Cs_ddg.Builder.store b ~preplace:2 ~addr x;
  let region = Cs_ddg.Builder.finish b in
  let assignment = Cs_baselines.Bug.assign ~machine:raw4 region in
  check_int "store home" 2 assignment.(3);
  check_int "producer follows" 2 assignment.(1)

(* --- Anneal --- *)

let test_anneal_schedule_valid () =
  let sched = Cs_baselines.Anneal.schedule ~machine:vliw4 (jacobi 4) in
  Cs_sched.Validator.check_exn sched

let test_anneal_deterministic_per_seed () =
  let region = mxm 4 in
  let a1 = Cs_baselines.Anneal.assign ~seed:5 ~machine:vliw4 region in
  let a2 = Cs_baselines.Anneal.assign ~seed:5 ~machine:vliw4 region in
  Alcotest.(check (array int)) "same seed same result" a1 a2

let test_anneal_respects_preplacement_on_mesh () =
  let region = jacobi 4 in
  let assignment = Cs_baselines.Anneal.assign ~machine:raw4 region in
  check_bool "homes kept" true (preplaced_respected region assignment);
  Cs_sched.Validator.check_exn (Cs_baselines.Anneal.schedule ~machine:raw4 region)

let test_anneal_beats_random_start () =
  (* The annealed assignment must not be worse than a fresh random one. *)
  let region = mxm 4 in
  let annealed =
    Cs_sched.Schedule.makespan (Cs_baselines.Anneal.schedule ~machine:vliw4 region)
  in
  let rng = Cs_util.Rng.create 123 in
  let random =
    Array.init (Cs_ddg.Region.n_instrs region) (fun _ -> Cs_util.Rng.int rng 4)
  in
  let baseline =
    Cs_baselines.Estimator.schedule_length ~machine:vliw4 ~assignment:random region
  in
  check_bool "annealing helps" true (annealed <= baseline)

(* --- Estimator --- *)

let test_estimator_approximate_lower_bounds () =
  let region = jacobi 4 in
  let assignment = Cs_baselines.Rawcc.assign ~machine:vliw4 region in
  let approx =
    Cs_baselines.Estimator.approximate_length ~machine:vliw4 ~assignment region
  in
  let exact = Cs_baselines.Estimator.schedule_length ~machine:vliw4 ~assignment region in
  let analysis = Cs_baselines.Estimator.analysis_for ~machine:vliw4 region in
  check_bool "approx >= cpl" true (approx >= Cs_ddg.Analysis.cpl analysis);
  check_bool "approx positive" true (approx > 0);
  check_bool "approx cheap but not wild" true (approx <= 4 * exact)

let test_estimator_matches_list_schedule () =
  let region = jacobi 4 in
  let assignment = Cs_baselines.Rawcc.assign ~machine:vliw4 region in
  let est = Cs_baselines.Estimator.schedule_length ~machine:vliw4 ~assignment region in
  let analysis = Cs_baselines.Estimator.analysis_for ~machine:vliw4 region in
  let sched =
    Cs_sched.List_scheduler.run ~machine:vliw4 ~assignment
      ~priority:(Cs_sched.Priority.alap analysis) ~analysis region
  in
  check_int "estimate exact" (Cs_sched.Schedule.makespan sched) est

(* --- Serial-code sanity: baselines behave on sha --- *)

let test_all_baselines_on_sha () =
  List.iter
    (fun (name, machine) ->
      List.iter
        (fun sch ->
          let sched = Cs_sim.Pipeline.schedule ~scheduler:sch ~machine (sha ()) in
          check_bool (name ^ " valid") true (Cs_sched.Validator.check sched = Ok ()))
        [ Cs_sim.Pipeline.Rawcc; Cs_sim.Pipeline.Uas; Cs_sim.Pipeline.Bug ])
    [ ("vliw", vliw4); ("raw", raw4) ]

let () =
  Alcotest.run "cs_baselines"
    [
      ( "rawcc",
        [
          Alcotest.test_case "valid" `Quick test_rawcc_schedule_valid;
          Alcotest.test_case "preplacement" `Quick test_rawcc_respects_preplacement;
          Alcotest.test_case "spreads" `Quick test_rawcc_uses_multiple_tiles;
          Alcotest.test_case "single cluster" `Quick test_rawcc_single_cluster;
        ] );
      ( "uas",
        [
          Alcotest.test_case "valid vliw" `Quick test_uas_schedule_valid_vliw;
          Alcotest.test_case "valid raw" `Quick test_uas_schedule_valid_raw;
          Alcotest.test_case "preplacement" `Quick test_uas_respects_preplacement_on_mesh;
          Alcotest.test_case "spreads" `Quick test_uas_spreads_parallel_work;
        ] );
      ( "pcc",
        [
          Alcotest.test_case "components cover" `Quick test_pcc_components_cover_all;
          Alcotest.test_case "components capped" `Quick test_pcc_components_capped;
          Alcotest.test_case "pin consistent" `Quick test_pcc_components_pin_consistent;
          Alcotest.test_case "valid" `Quick test_pcc_schedule_valid;
          Alcotest.test_case "descent no worse" `Slow test_pcc_descent_does_not_regress;
          Alcotest.test_case "preplacement mesh" `Quick test_pcc_respects_preplacement_on_mesh;
          Alcotest.test_case "vliw remote legal" `Quick test_pcc_vliw_schedule_still_legal_with_remote_memory;
        ] );
      ( "bug",
        [
          Alcotest.test_case "valid" `Quick test_bug_schedule_valid;
          Alcotest.test_case "preplacement" `Quick test_bug_respects_preplacement_on_mesh;
          Alcotest.test_case "desire propagates" `Quick test_bug_desire_propagates;
        ] );
      ( "anneal",
        [
          Alcotest.test_case "valid" `Slow test_anneal_schedule_valid;
          Alcotest.test_case "deterministic" `Slow test_anneal_deterministic_per_seed;
          Alcotest.test_case "preplacement" `Slow test_anneal_respects_preplacement_on_mesh;
          Alcotest.test_case "beats random" `Slow test_anneal_beats_random_start;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "matches schedule" `Quick test_estimator_matches_list_schedule;
          Alcotest.test_case "approximate bounds" `Quick test_estimator_approximate_lower_bounds;
        ] );
      ("serial", [ Alcotest.test_case "sha all baselines" `Slow test_all_baselines_on_sha ]);
    ]
