test/test_validator.ml: Alcotest Array Cs_ddg Cs_machine Cs_sched List String
