test/test_util.ml: Alcotest Array Cs_util Float Hashtbl Int List QCheck QCheck_alcotest String
