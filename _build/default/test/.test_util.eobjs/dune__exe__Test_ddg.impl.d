test/test_ddg.ml: Alcotest Analysis Array Builder Cs_ddg Cs_machine Cs_workloads Dot Graph Instr Int List Opcode Reg Region String Textual
