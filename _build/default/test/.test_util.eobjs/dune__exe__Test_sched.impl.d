test/test_sched.ml: Alcotest Array Cs_ddg Cs_machine Cs_sched Format Int List String
