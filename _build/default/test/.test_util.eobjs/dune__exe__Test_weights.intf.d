test/test_weights.mli:
