test/test_weights.ml: Alcotest Cs_core Format List Printf QCheck QCheck_alcotest String Weights
