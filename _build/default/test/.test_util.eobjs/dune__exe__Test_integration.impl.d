test/test_integration.ml: Alcotest Cs_core Cs_machine Cs_sched Cs_sim Cs_util Cs_workloads List Option
