test/test_baselines.ml: Alcotest Array Cs_baselines Cs_ddg Cs_machine Cs_sched Cs_sim Cs_util Cs_workloads Int List
