test/test_program.ml: Alcotest Array Cs_core Cs_ddg Cs_machine Cs_sched Cs_sim Cs_workloads Int64 List
