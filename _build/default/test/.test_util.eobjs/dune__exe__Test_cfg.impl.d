test/test_cfg.ml: Alcotest Array Cs_cfg Cs_ddg Cs_machine Cs_sim Float List Option
