test/test_props.ml: Alcotest Array Cs_baselines Cs_core Cs_ddg Cs_machine Cs_regalloc Cs_sched Cs_sim Cs_workloads Int List Printf QCheck QCheck_alcotest
