test/test_regalloc.ml: Alcotest Array Cs_ddg Cs_machine Cs_regalloc Cs_sched Cs_workloads Int List
