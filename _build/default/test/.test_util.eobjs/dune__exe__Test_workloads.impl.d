test/test_workloads.ml: Alcotest Cs_ddg Cs_machine Cs_workloads Format Int List Option
