test/test_driver.ml: Alcotest Array Context Cs_core Cs_ddg Cs_machine Cs_workloads Driver List Option Pass Sequence Trace Weights
