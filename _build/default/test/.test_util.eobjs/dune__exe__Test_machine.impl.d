test/test_machine.ml: Alcotest Array Cs_ddg Cs_machine Fu Latency List Machine Raw Topology Vliw
