(* Extension experiments beyond the paper's evaluation: the full
   scheduler cross-comparison, mesh-size scaling, and iterated
   convergence. *)

(* Every scheduler on every benchmark of both suites. *)
let baselines () =
  Report.section "Extension: all schedulers on both machines (speedup over one cluster)";
  let run suite header measure =
    let table =
      Cs_util.Table.create
        ~header:(header :: List.map Cs_sim.Pipeline.scheduler_name Cs_sim.Pipeline.all_schedulers)
    in
    List.iter
      (fun entry ->
        Cs_util.Table.add_row table
          (entry.Cs_workloads.Suite.name
          :: List.map
               (fun scheduler -> Report.fl (measure scheduler entry))
               Cs_sim.Pipeline.all_schedulers))
      suite;
    Cs_util.Table.print table
  in
  run Cs_workloads.Suite.raw_suite "raw16" (fun scheduler entry ->
      (Cs_sim.Speedup.on_raw ~scheduler ~tiles:16 entry).Cs_sim.Speedup.speedup);
  run Cs_workloads.Suite.vliw_suite "vliw4" (fun scheduler entry ->
      (Cs_sim.Speedup.on_vliw ~scheduler ~clusters:4 entry).Cs_sim.Speedup.speedup)

(* Convergent speedup as the mesh grows: does the paper's Table 2 trend
   (wins grow with tile count) continue past 16 tiles? *)
let scaling () =
  Report.section "Extension: convergent scaling on larger meshes";
  let tiles = [ 2; 4; 8; 16; 32; 64 ] in
  let table =
    Cs_util.Table.create
      ~header:("benchmark" :: List.map (fun t -> Printf.sprintf "%dT" t) tiles)
  in
  List.iter
    (fun name ->
      let entry = Option.get (Cs_workloads.Suite.find name) in
      Cs_util.Table.add_row table
        (name
        :: List.map
             (fun t ->
               Report.fl
                 (Cs_sim.Speedup.on_raw ~scheduler:Cs_sim.Pipeline.Convergent ~scale:2 ~tiles:t
                    entry)
                   .Cs_sim.Speedup.speedup)
             tiles))
    [ "jacobi"; "mxm"; "vvmul"; "cholesky" ];
  Cs_util.Table.print table;
  Printf.printf
    "(speedups saturate once per-tile work shrinks below the 3-cycle network latency)\n"

(* The paper's feature 5: applying the sequence iteratively. *)
let iterate () =
  Report.section "Extension: iterated convergence (paper Sec. 2, feature 5)";
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let table =
    Cs_util.Table.create ~header:[ "benchmark"; "1 round"; "iterated"; "rounds used" ]
  in
  List.iter
    (fun entry ->
      let region = entry.Cs_workloads.Suite.generate ~clusters:4 () in
      let cycles_of result =
        let analysis = result.Cs_core.Driver.context.Cs_core.Context.analysis in
        let sched =
          Cs_sched.List_scheduler.run ~machine
            ~assignment:result.Cs_core.Driver.assignment
            ~priority:(Cs_sched.Priority.of_slots result.Cs_core.Driver.preferred_slot)
            ~analysis region
        in
        Cs_sched.Schedule.makespan sched
      in
      let single = Cs_core.Driver.run ~machine region (Cs_core.Sequence.vliw_default ()) in
      let iterated, rounds =
        Cs_core.Driver.run_iterative ~machine region (Cs_core.Sequence.vliw_default ())
      in
      Cs_util.Table.add_row table
        [ entry.Cs_workloads.Suite.name; string_of_int (cycles_of single);
          string_of_int (cycles_of iterated); string_of_int rounds ])
    Cs_workloads.Suite.vliw_suite;
  Cs_util.Table.print table
