(* Region-formation experiment (extension): the paper schedules
   whatever units the compiler forms (Sec. 3); bigger units expose more
   ILP. Compare expected hot-path cycles when the same random structured
   CFG is scheduled as basic blocks, Fisher traces, superblocks (tail
   duplication), and one if-converted hyperblock. *)

let machine = Cs_machine.Vliw.create ~n_clusters:4 ()

let cycles_of region =
  if Cs_ddg.Region.n_instrs region = 0 then 0
  else begin
    let sched, _ = Cs_sim.Pipeline.convergent ~machine region in
    Cs_sched.Schedule.makespan sched
  end

(* Expected cycles per entry execution: each region's makespan weighted
   by the frequency of its first block. *)
let expected_cycles cfg unit_of_blocks units =
  let freqs = Cs_cfg.Cfg.frequencies cfg in
  List.fold_left
    (fun acc unit ->
      match unit with
      | [] -> acc
      | first :: _ ->
        let weight = List.assoc first freqs in
        acc +. (weight *. float_of_int (cycles_of (unit_of_blocks unit))))
    0.0 units

let regions () =
  Report.section "Extension: scheduling-unit formation (blocks vs traces vs superblocks vs hyperblock)";
  let table =
    Cs_util.Table.create
      ~header:[ "seed"; "blocks"; "basic-block"; "trace"; "superblock"; "hyperblock" ]
  in
  List.iter
    (fun seed ->
      let cfg = Cs_cfg.Generate.acyclic ~seed () in
      let n_blocks = List.length cfg.Cs_cfg.Cfg.blocks in
      let per_block =
        expected_cycles cfg
          (fun unit -> Cs_cfg.Trace.region_of_trace cfg unit)
          (List.map (fun b -> [ b.Cs_cfg.Cfg.label ]) cfg.Cs_cfg.Cfg.blocks)
      in
      let traces =
        expected_cycles cfg
          (fun unit -> Cs_cfg.Trace.region_of_trace cfg unit)
          (Cs_cfg.Trace.select cfg)
      in
      let cfg_sb, superblocks = Cs_cfg.Superblock.form cfg in
      let sb =
        expected_cycles cfg_sb
          (fun unit -> Cs_cfg.Trace.region_of_trace cfg_sb unit)
          superblocks
      in
      let hyper =
        float_of_int (cycles_of (Cs_cfg.Hyperblock.region_of cfg ~entry:cfg.Cs_cfg.Cfg.entry))
      in
      Cs_util.Table.add_row table
        [ string_of_int seed; string_of_int n_blocks; Report.fl per_block; Report.fl traces;
          Report.fl sb; Report.fl hyper ])
    [ 1; 2; 3; 4; 5 ];
  Cs_util.Table.print table;
  Printf.printf
    "(expected cycles per entry execution, hot paths weighted by block frequency;\n larger units expose more ILP to the convergent scheduler, while the hyperblock\n pays for executing both arms of every diamond)\n"
