(* Shared reporting helpers for the benchmark harness. *)

let section title =
  let rule = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n" rule title rule

let subsection title = Printf.printf "\n--- %s ---\n" title

let fl = Cs_util.Table.cell_float

let raw_suite_names () =
  List.map (fun e -> e.Cs_workloads.Suite.name) Cs_workloads.Suite.raw_suite

let vliw_suite_names () =
  List.map (fun e -> e.Cs_workloads.Suite.name) Cs_workloads.Suite.vliw_suite

(* Geometric-mean ratio of a/b speedups, reported as a percentage
   improvement — the kind of "average improvement" number the paper
   quotes (21% over Rawcc, 14% over UAS, 28% over PCC). *)
let average_improvement pairs =
  let ratios = List.map (fun (a, b) -> a /. b) pairs in
  (Cs_util.Stats.geomean ratios -. 1.0) *. 100.0
