(* Bechamel micro-benchmarks: one Test.make per experiment driver, at a
   reduced problem size so the statistics converge quickly. *)

open Bechamel
open Toolkit

let jacobi16 = lazy (Cs_workloads.Jacobi.generate ~clusters:16 ())
let yuv4 = lazy (Cs_workloads.Yuv.generate ~clusters:4 ())
let layered400 =
  lazy
    (Cs_workloads.Shapes.layered ~n:400 ~seed:3
       ~congruence:(Cs_workloads.Congruence.interleaved ~n_banks:4) ())

let raw16 = lazy (Cs_machine.Raw.with_tiles 16)
let vliw4 = lazy (Cs_machine.Vliw.create ~n_clusters:4 ())

let run scheduler machine region () =
  ignore
    (Cs_sim.Pipeline.schedule ~scheduler ~machine:(Lazy.force machine) (Lazy.force region))

let tests =
  Test.make_grouped ~name:"csched"
    [
      (* Table 2 / Fig. 6 drivers *)
      Test.make ~name:"table2:convergent/raw16/jacobi"
        (Staged.stage (run Cs_sim.Pipeline.Convergent raw16 jacobi16));
      Test.make ~name:"table2:rawcc/raw16/jacobi"
        (Staged.stage (run Cs_sim.Pipeline.Rawcc raw16 jacobi16));
      (* Fig. 8 drivers *)
      Test.make ~name:"fig8:convergent/vliw4/yuv"
        (Staged.stage (run Cs_sim.Pipeline.Convergent vliw4 yuv4));
      Test.make ~name:"fig8:uas/vliw4/yuv"
        (Staged.stage (run Cs_sim.Pipeline.Uas vliw4 yuv4));
      Test.make ~name:"fig8:pcc/vliw4/yuv"
        (Staged.stage (run Cs_sim.Pipeline.Pcc vliw4 yuv4));
      (* Fig. 10 driver *)
      Test.make ~name:"fig10:convergent/vliw4/layered400"
        (Staged.stage (run Cs_sim.Pipeline.Convergent vliw4 layered400));
      (* Fig. 7 / Fig. 9 driver: trace collection *)
      Test.make ~name:"fig7:trace/raw16/jacobi"
        (Staged.stage (fun () ->
             ignore
               (Cs_sim.Pipeline.convergent ~machine:(Lazy.force raw16) (Lazy.force jacobi16))));
    ]

let micro () =
  Report.section "Bechamel micro-benchmarks (monotonic clock per run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.8) ~kde:(Some 500) () in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some (time_ns :: _) ->
              Printf.printf "%-45s %12.0f ns/run\n" name time_ns
            | Some [] | None -> Printf.printf "%-45s (no estimate)\n" name)
          tbl)
    results
