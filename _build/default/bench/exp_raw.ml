(* Table 2 / Fig. 6 / Fig. 7: the Raw-machine experiments. *)

let tile_configs = [ 2; 4; 8; 16 ]

let measure scheduler entry tiles =
  Cs_sim.Speedup.on_raw ~scheduler ~tiles entry

(* Table 2: Rawcc-baseline and convergent speedups on 2-16 tiles,
   relative to one tile. *)
let table2 () =
  Report.section "Table 2: Rawcc speedup (Base vs Convergent), relative to one tile";
  let header =
    "Benchmark/Tiles"
    :: (List.map (fun t -> Printf.sprintf "B%d" t) tile_configs
       @ List.map (fun t -> Printf.sprintf "C%d" t) tile_configs)
  in
  let table = Cs_util.Table.create ~header in
  let improvements = ref [] in
  List.iter
    (fun entry ->
      let base = List.map (measure Cs_sim.Pipeline.Rawcc entry) tile_configs in
      let conv = List.map (measure Cs_sim.Pipeline.Convergent entry) tile_configs in
      let cells m = Report.fl m.Cs_sim.Speedup.speedup in
      Cs_util.Table.add_row table
        (entry.Cs_workloads.Suite.name :: (List.map cells base @ List.map cells conv));
      let b16 = List.nth base 3 and c16 = List.nth conv 3 in
      improvements := (c16.Cs_sim.Speedup.speedup, b16.Cs_sim.Speedup.speedup) :: !improvements)
    Cs_workloads.Suite.raw_suite;
  Cs_util.Table.print table;
  Printf.printf
    "Average convergent improvement over Rawcc baseline at 16 tiles: %+.1f%%\n(paper: +21%%; paper also reports convergent losing on fpppp-kernel and sha)\n"
    (Report.average_improvement !improvements)

(* Fig. 6: the 16-tile column as a bar chart. *)
let fig6 () =
  Report.section "Figure 6: Rawcc vs Convergent speedup on a 16-tile Raw machine";
  let table = Cs_util.Table.create ~header:[ "benchmark"; "sched"; "speedup"; "" ] in
  let max_speedup = ref 1.0 in
  let rows =
    List.concat_map
      (fun entry ->
        let b = measure Cs_sim.Pipeline.Rawcc entry 16 in
        let c = measure Cs_sim.Pipeline.Convergent entry 16 in
        max_speedup := max !max_speedup (max b.Cs_sim.Speedup.speedup c.Cs_sim.Speedup.speedup);
        [ (entry.Cs_workloads.Suite.name, "rawcc", b.Cs_sim.Speedup.speedup);
          ("", "convergent", c.Cs_sim.Speedup.speedup) ])
      Cs_workloads.Suite.raw_suite
  in
  List.iter
    (fun (name, sched, speedup) ->
      Cs_util.Table.add_row table
        [ name; sched; Report.fl speedup;
          Cs_util.Table.bar ~width:40 ~max_value:!max_speedup speedup ])
    rows;
  Cs_util.Table.print table

(* Fig. 7: percentage of instructions whose preferred tile changes per
   space pass, per benchmark, on a 16-tile Raw machine. *)
let fig7 () =
  Report.section "Figure 7: convergence of spatial assignments on Raw (16 tiles)";
  let machine = Cs_machine.Raw.with_tiles 16 in
  let traces =
    List.map
      (fun entry ->
        let region = entry.Cs_workloads.Suite.generate ~clusters:16 () in
        let _sched, trace = Cs_sim.Pipeline.convergent ~machine region in
        (entry.Cs_workloads.Suite.name, Cs_core.Trace.space_steps trace))
      Cs_workloads.Suite.raw_suite
  in
  let pass_names =
    match traces with
    | (_, steps) :: _ -> List.map (fun s -> s.Cs_core.Trace.pass_name) steps
    | [] -> []
  in
  let table = Cs_util.Table.create ~header:("pass" :: Report.raw_suite_names ()) in
  List.iteri
    (fun k pass ->
      Cs_util.Table.add_row table
        (pass
        :: List.map
             (fun (_, steps) ->
               Report.fl (Cs_core.Trace.changed_fraction (List.nth steps k)))
             traces))
    pass_names;
  Cs_util.Table.print table;
  Printf.printf
    "(paper: preplacement-rich benchmarks converge in the early placement passes;\n fpppp-kernel and sha keep moving until the parallelism/communication passes)\n"
