(* Fig. 8 / Fig. 9: the clustered-VLIW experiments. *)

let schedulers = [ Cs_sim.Pipeline.Pcc; Cs_sim.Pipeline.Uas; Cs_sim.Pipeline.Convergent ]

(* Fig. 8: PCC vs UAS vs convergent speedups on a 4-cluster VLIW,
   relative to a single cluster. *)
let fig8 () =
  Report.section "Figure 8: PCC vs UAS vs Convergent on a four-cluster VLIW";
  let results =
    List.map
      (fun entry ->
        ( entry,
          List.map
            (fun scheduler -> Cs_sim.Speedup.on_vliw ~scheduler ~clusters:4 entry)
            schedulers ))
      Cs_workloads.Suite.vliw_suite
  in
  let table = Cs_util.Table.create ~header:[ "benchmark"; "pcc"; "uas"; "convergent"; "" ] in
  let max_speedup =
    List.fold_left
      (fun acc (_, ms) ->
        List.fold_left (fun acc m -> max acc m.Cs_sim.Speedup.speedup) acc ms)
      1.0 results
  in
  List.iter
    (fun (entry, ms) ->
      let conv = List.nth ms 2 in
      Cs_util.Table.add_row table
        (entry.Cs_workloads.Suite.name
        :: (List.map (fun m -> Report.fl m.Cs_sim.Speedup.speedup) ms
           @ [ Cs_util.Table.bar ~width:30 ~max_value:max_speedup conv.Cs_sim.Speedup.speedup ])))
    results;
  Cs_util.Table.print table;
  let improvement k =
    Report.average_improvement
      (List.map
         (fun (_, ms) ->
           ((List.nth ms 2).Cs_sim.Speedup.speedup, (List.nth ms k).Cs_sim.Speedup.speedup))
         results)
  in
  Printf.printf
    "Average convergent improvement: %+.1f%% over UAS (paper: +14%%), %+.1f%% over PCC (paper: +28%%).\n"
    (improvement 1) (improvement 0);
  Printf.printf
    "(see EXPERIMENTS.md: our PCC reimplementation shares this repo's strong list\n scheduler, so it is stronger than the 1998 original on several kernels)\n"

(* Fig. 9: per-pass preferred-cluster changes on the VLIW. *)
let fig9 () =
  Report.section "Figure 9: convergence of spatial assignments on Chorus (4 clusters)";
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let traces =
    List.map
      (fun entry ->
        let region = entry.Cs_workloads.Suite.generate ~clusters:4 () in
        let _sched, trace = Cs_sim.Pipeline.convergent ~machine region in
        (entry.Cs_workloads.Suite.name, Cs_core.Trace.space_steps trace))
      Cs_workloads.Suite.vliw_suite
  in
  let pass_names =
    match traces with
    | (_, steps) :: _ -> List.map (fun s -> s.Cs_core.Trace.pass_name) steps
    | [] -> []
  in
  let table = Cs_util.Table.create ~header:("pass" :: Report.vliw_suite_names ()) in
  List.iteri
    (fun k pass ->
      Cs_util.Table.add_row table
        (pass
        :: List.map
             (fun (_, steps) ->
               Report.fl (Cs_core.Trace.changed_fraction (List.nth steps k)))
             traces))
    pass_names;
  Cs_util.Table.print table
