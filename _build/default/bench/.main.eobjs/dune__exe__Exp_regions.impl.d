bench/exp_regions.ml: Cs_cfg Cs_ddg Cs_machine Cs_sched Cs_sim Cs_util List Printf Report
