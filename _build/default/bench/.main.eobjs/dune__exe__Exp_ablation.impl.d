bench/exp_ablation.ml: Cs_core Cs_machine Cs_regalloc Cs_sched Cs_sim Cs_util Cs_workloads List Printf Report
