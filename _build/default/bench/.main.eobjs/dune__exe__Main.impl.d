bench/main.ml: Array Cs_core Exp_ablation Exp_compile_time Exp_extra Exp_micro Exp_raw Exp_regions Exp_vliw List Printf Report String Sys
