bench/report.ml: Cs_util Cs_workloads List Printf String
