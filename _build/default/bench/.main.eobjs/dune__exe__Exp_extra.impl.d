bench/exp_extra.ml: Cs_core Cs_machine Cs_sched Cs_sim Cs_util Cs_workloads List Option Printf Report
