bench/main.mli:
