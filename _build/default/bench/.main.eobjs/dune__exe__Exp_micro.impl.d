bench/exp_micro.ml: Analyze Bechamel Benchmark Cs_machine Cs_sim Cs_workloads Hashtbl Instance Lazy List Measure Printf Report Staged Test Time Toolkit
