bench/exp_compile_time.ml: Cs_machine Cs_sim Cs_util List Printf Report
