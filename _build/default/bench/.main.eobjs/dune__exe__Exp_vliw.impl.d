bench/exp_vliw.ml: Cs_core Cs_machine Cs_sim Cs_util Cs_workloads List Printf Report
