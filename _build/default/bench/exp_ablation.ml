(* Ablation study (a step-5 extension, not in the paper): remove each
   pass from the default sequences and measure the geometric-mean
   speedup change across the suite — quantifying what every heuristic
   contributes, which the paper only motivates qualitatively. *)

let geomean_speedup ~machine ~passes suite ~clusters =
  let speedups =
    List.map
      (fun entry ->
        let region = entry.Cs_workloads.Suite.generate ~clusters () in
        let sched, _ = Cs_sim.Pipeline.convergent ~passes ~machine region in
        let base =
          if Cs_machine.Machine.is_mesh machine then
            Cs_sim.Speedup.baseline_cycles_raw entry
          else Cs_sim.Speedup.baseline_cycles_vliw entry
        in
        float_of_int base /. float_of_int (max 1 (Cs_sched.Schedule.makespan sched)))
      suite
  in
  Cs_util.Stats.geomean speedups

let drop_nth k passes = List.filteri (fun i _ -> i <> k) passes

let run_one title ~machine ~mk_passes suite ~clusters =
  Report.subsection title;
  let full = mk_passes () in
  let reference = geomean_speedup ~machine ~passes:full suite ~clusters in
  Printf.printf "full sequence geomean speedup: %.3f\n" reference;
  let table = Cs_util.Table.create ~header:[ "removed pass"; "geomean"; "delta %" ] in
  List.iteri
    (fun k pass ->
      let ablated = drop_nth k (mk_passes ()) in
      let s = geomean_speedup ~machine ~passes:ablated suite ~clusters in
      Cs_util.Table.add_row table
        [ Printf.sprintf "%d:%s" k pass.Cs_core.Pass.name; Report.fl ~decimals:3 s;
          Printf.sprintf "%+.1f" ((s /. reference -. 1.0) *. 100.0) ])
    full;
  Cs_util.Table.print table

let ablation () =
  Report.section "Ablation: contribution of each pass (extension experiment)";
  run_one "Raw, 16 tiles" ~machine:(Cs_machine.Raw.with_tiles 16)
    ~mk_passes:Cs_core.Sequence.raw_default Cs_workloads.Suite.raw_suite ~clusters:16;
  run_one "Clustered VLIW, 4 clusters" ~machine:(Cs_machine.Vliw.create ~n_clusters:4 ())
    ~mk_passes:Cs_core.Sequence.vliw_default Cs_workloads.Suite.vliw_suite ~clusters:4

(* The paper's stated future work (Sec. 5): "we expect that integrating a
   clustering pass to convergent scheduling will address this problem"
   (poor results on fpppp-kernel and sha, where preplacement offers no
   guidance). This experiment adds the CLUSTER pass and reports the
   per-benchmark effect. *)
let cluster_integration () =
  Report.section "Extension: CLUSTER pass integration (the paper's future work)";
  let machine = Cs_machine.Raw.with_tiles 16 in
  let with_cluster () =
    [ Cs_core.Inittime.pass (); Cs_core.Placeprop.pass (); Cs_core.Load.pass ();
      Cs_core.Place.pass (); Cs_core.Path.pass (); Cs_core.Cluster.pass ();
      Cs_core.Pathprop.pass (); Cs_core.Level.pass ~stride:4 (); Cs_core.Pathprop.pass ();
      Cs_core.Comm.pass (); Cs_core.Cluster.pass (); Cs_core.Load.pass ();
      Cs_core.Emphcp.pass () ]
  in
  let table =
    Cs_util.Table.create ~header:[ "benchmark"; "default"; "+CLUSTER"; "rawcc"; "delta %" ]
  in
  List.iter
    (fun entry ->
      let region = entry.Cs_workloads.Suite.generate ~clusters:16 () in
      let cycles passes =
        let sched, _ = Cs_sim.Pipeline.convergent ?passes ~machine region in
        Cs_sched.Schedule.makespan sched
      in
      let base = cycles None in
      let clustered = cycles (Some (with_cluster ())) in
      let rawcc =
        Cs_sched.Schedule.makespan
          (Cs_sim.Pipeline.schedule ~scheduler:Cs_sim.Pipeline.Rawcc ~machine region)
      in
      Cs_util.Table.add_row table
        [ entry.Cs_workloads.Suite.name; string_of_int base; string_of_int clustered;
          string_of_int rawcc;
          Printf.sprintf "%+.1f" ((float_of_int base /. float_of_int clustered -. 1.0) *. 100.0) ])
    Cs_workloads.Suite.raw_suite;
  Cs_util.Table.print table;
  Printf.printf
    "(CLUSTER helps exactly where the paper predicted: the graphs with no\n preplacement guidance — fpppp-kernel, sha — at some cost on regular stencils)\n"

(* Multi-region compilation (paper Secs. 1/5: values live across
   scheduling regions must keep consistent cluster homes). Splits the
   sha rounds across 1..8 regions and reports total cycles: more
   boundaries mean less scheduling freedom and real transfers for
   chaining values read away from their homes. *)
let multiblock () =
  Report.section "Extension: multi-region sha (live values across scheduling regions)";
  let table =
    Cs_util.Table.create
      ~header:[ "blocks"; "raw16 convergent"; "raw16 rawcc"; "vliw4 convergent"; "vliw4 uas" ]
  in
  List.iter
    (fun blocks ->
      let program = Cs_sim.Program.sha_rounds ~blocks () in
      let cycles scheduler machine =
        (Cs_sim.Program.schedule ~scheduler ~machine program).Cs_sim.Program.total_cycles
      in
      let raw = Cs_machine.Raw.with_tiles 16 in
      let vliw = Cs_machine.Vliw.create ~n_clusters:4 () in
      Cs_util.Table.add_row table
        [ string_of_int blocks;
          string_of_int (cycles Cs_sim.Pipeline.Convergent raw);
          string_of_int (cycles Cs_sim.Pipeline.Rawcc raw);
          string_of_int (cycles Cs_sim.Pipeline.Convergent vliw);
          string_of_int (cycles Cs_sim.Pipeline.Uas vliw) ])
    [ 1; 2; 4; 8 ];
  Cs_util.Table.print table;
  Printf.printf
    "(region boundaries serialize the chaining variables: more blocks, more cycles;\n homes follow the Raw first-definition rule on meshes, cluster 0 on the VLIW)\n"

(* Register-pressure extension: the REGPRESS pass (Sec. 6's "adding
   preference maps for registers" direction) against the linear-scan
   spill counts of the resulting schedules. *)
let regalloc () =
  Report.section "Extension: REGPRESS pass vs register spills (16 registers/cluster)";
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let with_regpress () =
    Cs_core.Sequence.vliw_default () @ [ Cs_core.Regpress.pass ~registers_per_cluster:16 () ]
  in
  let table =
    Cs_util.Table.create
      ~header:[ "benchmark"; "spills"; "spills+RP"; "cycles"; "cycles+RP" ]
  in
  List.iter
    (fun entry ->
      let region = entry.Cs_workloads.Suite.generate ~clusters:4 () in
      let run passes =
        let sched, _ = Cs_sim.Pipeline.convergent ~passes ~machine region in
        let alloc = Cs_regalloc.Linear_scan.run ~registers:16 sched in
        (alloc.Cs_regalloc.Linear_scan.total_spills, Cs_sched.Schedule.makespan sched)
      in
      let spills0, cycles0 = run (Cs_core.Sequence.vliw_default ()) in
      let spills1, cycles1 = run (with_regpress ()) in
      Cs_util.Table.add_row table
        [ entry.Cs_workloads.Suite.name; string_of_int spills0; string_of_int spills1;
          string_of_int cycles0; string_of_int cycles1 ])
    Cs_workloads.Suite.vliw_suite;
  Cs_util.Table.print table
