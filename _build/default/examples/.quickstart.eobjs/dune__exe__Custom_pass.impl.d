examples/custom_pass.ml: Array Cs_core Cs_ddg Cs_machine List Printf
