examples/quickstart.ml: Cs_core Cs_ddg Cs_machine Cs_sched Cs_sim Format
