examples/vliw_compare.mli:
