examples/tradeoff.ml: Array Cs_ddg Cs_machine Cs_sched Cs_sim Format Printf
