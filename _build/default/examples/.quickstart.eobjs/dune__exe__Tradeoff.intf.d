examples/tradeoff.mli:
