examples/fpppp_trace.ml: Array Cs_core Cs_ddg Cs_machine Cs_sched Format Hashtbl List String
