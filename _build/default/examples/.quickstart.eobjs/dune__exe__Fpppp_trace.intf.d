examples/fpppp_trace.mli:
