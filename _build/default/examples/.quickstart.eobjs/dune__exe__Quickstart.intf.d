examples/quickstart.mli:
