examples/region_formation.ml: Cs_cfg Cs_ddg Cs_machine Cs_sched Cs_sim Format List Printf String
