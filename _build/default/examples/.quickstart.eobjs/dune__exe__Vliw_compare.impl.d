examples/vliw_compare.ml: Array Cs_machine Cs_regalloc Cs_sched Cs_sim Cs_util Cs_workloads List Printf String Sys
