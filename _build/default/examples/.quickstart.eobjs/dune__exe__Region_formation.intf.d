examples/region_formation.mli:
