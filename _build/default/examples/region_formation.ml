(* Region formation: the paper schedules "basic blocks, traces,
   superblocks, or hyperblocks" (Sec. 3). This example takes one small
   CFG — a hot path with a rare error arm — and compares scheduling it
   (a) block by block, (b) as Fisher traces, and (c) as one if-converted
   hyperblock, all through the convergent scheduler on a 2x2 Raw.

     dune exec examples/region_formation.exe *)

let v n = n

let cfg =
  let instr ?preplace ?tag op ?dst srcs = Cs_cfg.Cfg.pinstr ?preplace ?tag op ?dst srcs in
  {
    Cs_cfg.Cfg.entry = "load";
    blocks =
      [
        { Cs_cfg.Cfg.label = "load";
          body =
            [ instr Cs_ddg.Opcode.Const ~dst:(v 0) ~tag:"addr" [];
              instr ~preplace:0 Cs_ddg.Opcode.Load ~dst:(v 1) ~tag:"x" [ v 0 ];
              instr ~preplace:1 Cs_ddg.Opcode.Load ~dst:(v 2) ~tag:"y" [ v 0 ] ];
          succs = [ ("fast", 0.95); ("slow", 0.05) ] };
        { Cs_cfg.Cfg.label = "fast";
          body =
            [ instr Cs_ddg.Opcode.Fmul ~dst:(v 3) [ v 1; v 2 ];
              instr Cs_ddg.Opcode.Fadd ~dst:(v 4) [ v 3; v 1 ] ];
          succs = [ ("out", 1.0) ] };
        { Cs_cfg.Cfg.label = "slow";
          body =
            [ instr Cs_ddg.Opcode.Fdiv ~dst:(v 3) [ v 1; v 2 ];
              instr Cs_ddg.Opcode.Fsqrt ~dst:(v 4) [ v 3 ] ];
          succs = [ ("out", 1.0) ] };
        { Cs_cfg.Cfg.label = "out";
          body =
            [ instr Cs_ddg.Opcode.Const ~dst:(v 5) ~tag:"out.addr" [];
              instr ~preplace:2 Cs_ddg.Opcode.Store [ v 5; v 4 ] ];
          succs = [] };
      ];
  }

let machine = Cs_machine.Raw.create ~rows:2 ~cols:2 ()

let cycles_of region =
  let sched, _ = Cs_sim.Pipeline.convergent ~machine region in
  Cs_sched.Schedule.makespan sched

let () =
  Format.printf "%a@." Cs_cfg.Cfg.pp cfg;

  (* (a) every basic block its own scheduling unit *)
  let per_block =
    List.map
      (fun b ->
        let region = Cs_cfg.Trace.region_of_trace cfg [ b.Cs_cfg.Cfg.label ] in
        (b.Cs_cfg.Cfg.label, if Cs_ddg.Region.n_instrs region = 0 then 0 else cycles_of region))
      cfg.Cs_cfg.Cfg.blocks
  in
  Printf.printf
    "\n(a) basic blocks:   %s  (hot-path total %d — optimistic: cross-block\n    values are priced as free live-ins here; see Cs_sim.Program for the\n    honest multi-region accounting)\n"
    (String.concat " " (List.map (fun (l, c) -> Printf.sprintf "%s=%d" l c) per_block))
    (List.fold_left
       (fun acc (l, c) -> if l = "slow" then acc else acc + c)
       0 per_block);

  (* (b) traces: the hot path becomes one unit *)
  let traces = Cs_cfg.Trace.select cfg in
  List.iter
    (fun trace ->
      let region = Cs_cfg.Trace.region_of_trace cfg trace in
      if Cs_ddg.Region.n_instrs region > 0 then
        Printf.printf "(b) trace [%s]: %d cycles\n" (String.concat "; " trace)
          (cycles_of region))
    traces;

  (* (c) hyperblock: both arms if-converted into one region *)
  let hyper = Cs_cfg.Hyperblock.region_of cfg ~entry:"load" in
  Printf.printf "(c) hyperblock: %d instrs, %d cycles (executes both arms, no branches)\n"
    (Cs_ddg.Region.n_instrs hyper) (cycles_of hyper)
