(* Writing a new heuristic: the paper (Sec. 2) argues that the weight
   interface makes retargeting easy — e.g. "if an architecture is able
   to exploit auto-increment on memory-access ..., one pass could try to
   keep together memory-accesses and increments". This example
   implements exactly that pass in ~20 lines and splices it into the
   default sequence.

     dune exec examples/custom_pass.exe *)

(* AUTOINC: for every add that feeds a load/store address (an increment
   that could fuse with the access), pull the two instructions onto the
   same cluster by blending their preference matrices. *)
let autoinc_pass =
  Cs_core.Pass.make ~name:"AUTOINC" ~kind:Cs_core.Pass.Space (fun ctx w ->
      let graph = Cs_core.Context.graph ctx in
      for i = 0 to Cs_ddg.Graph.n graph - 1 do
        let ins = Cs_ddg.Graph.instr graph i in
        if ins.Cs_ddg.Instr.op = Cs_ddg.Opcode.Add then
          List.iter
            (fun s ->
              let consumer = Cs_ddg.Graph.instr graph s in
              if Cs_ddg.Opcode.is_memory consumer.Cs_ddg.Instr.op then
                (* Pull the increment toward the access's preferences. *)
                Cs_core.Weights.blend w ~dst:i ~src:s ~keep:0.3)
            (Cs_ddg.Graph.succs graph i)
      done)

(* A pointer-chasing kernel with address increments feeding loads. *)
let region =
  let b = Cs_ddg.Builder.create ~name:"autoinc" () in
  for lane = 0 to 7 do
    let base = Cs_ddg.Builder.op0 b ~tag:(Printf.sprintf "base%d" lane) Cs_ddg.Opcode.Const in
    let stride = Cs_ddg.Builder.op0 b ~tag:"stride" Cs_ddg.Opcode.Const in
    let addr1 = Cs_ddg.Builder.op2 b ~tag:"inc" Cs_ddg.Opcode.Add base stride in
    let v1 = Cs_ddg.Builder.load b ~preplace:(lane mod 4) ~tag:"v1" addr1 in
    let addr2 = Cs_ddg.Builder.op2 b ~tag:"inc2" Cs_ddg.Opcode.Add addr1 stride in
    (* The second access of the lane hits the next bank, so increments
       sit between accesses with conflicting homes. *)
    let v2 = Cs_ddg.Builder.load b ~preplace:((lane + 1) mod 4) ~tag:"v2" addr2 in
    let s = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd v1 v2 in
    Cs_ddg.Builder.mark_live_out b s
  done;
  Cs_ddg.Builder.finish b

let count_split_increments assignment =
  let graph = region.Cs_ddg.Region.graph in
  let split = ref 0 in
  for i = 0 to Cs_ddg.Graph.n graph - 1 do
    let ins = Cs_ddg.Graph.instr graph i in
    if ins.Cs_ddg.Instr.op = Cs_ddg.Opcode.Add then
      List.iter
        (fun s ->
          if
            Cs_ddg.Opcode.is_memory (Cs_ddg.Graph.instr graph s).Cs_ddg.Instr.op
            && assignment.(i) <> assignment.(s)
          then incr split)
        (Cs_ddg.Graph.succs graph i)
  done;
  !split

let () =
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let baseline = Cs_core.Sequence.vliw_default () in
  let custom = baseline @ [ autoinc_pass ] in
  let run passes =
    let result = Cs_core.Driver.run ~machine region passes in
    count_split_increments result.Cs_core.Driver.assignment
  in
  let without = run baseline and with_pass = run custom in
  Printf.printf "increment/access pairs split across clusters:\n";
  Printf.printf "  default sequence : %d\n" without;
  Printf.printf "  + AUTOINC pass   : %d\n" with_pass;
  assert (with_pass <= without);
  print_endline "the custom pass kept increments with their memory accesses"
