(* Quickstart: build a small kernel, run the convergent scheduler on a
   2x2 Raw machine, and print the validated space-time schedule.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the computation as straight-line SSA code. Two loads are
     preplaced (their memory banks live on specific tiles). *)
  let b = Cs_ddg.Builder.create ~name:"dot2" () in
  let addr0 = Cs_ddg.Builder.op0 b ~tag:"a.addr" Cs_ddg.Opcode.Const in
  let a = Cs_ddg.Builder.load b ~preplace:0 ~tag:"a" addr0 in
  let addr1 = Cs_ddg.Builder.op0 b ~tag:"b.addr" Cs_ddg.Opcode.Const in
  let v = Cs_ddg.Builder.load b ~preplace:1 ~tag:"b" addr1 in
  let prod = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul a v in
  let acc = Cs_ddg.Builder.live_in b in
  let sum = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd acc prod in
  Cs_ddg.Builder.mark_live_out b sum;
  let region = Cs_ddg.Builder.finish b in

  (* 2. Pick a machine. *)
  let machine = Cs_machine.Raw.create ~rows:2 ~cols:2 () in
  Format.printf "machine: %a@." Cs_machine.Machine.pp machine;

  (* 3. Run the convergent scheduler (default Raw pass sequence) and the
     shared list scheduler; the result is validated automatically. *)
  let sched, trace = Cs_sim.Pipeline.convergent ~machine region in

  (* 4. Inspect the outcome. *)
  Format.printf "@.convergence trace (fraction of preferred tiles changed per pass):@.%a@."
    Cs_core.Trace.pp trace;
  Format.printf "@.final schedule:@.%a@." Cs_sched.Schedule.pp sched;
  Format.printf "makespan: %d cycles, %d inter-tile transfers@."
    (Cs_sched.Schedule.makespan sched)
    (Cs_sched.Schedule.n_comms sched)
