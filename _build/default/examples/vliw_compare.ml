(* Compare every scheduler in the repository on one benchmark across
   machines — a compact view of the whole evaluation.

     dune exec examples/vliw_compare.exe [benchmark]   (default: tomcatv) *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "tomcatv" in
  let entry =
    match Cs_workloads.Suite.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown benchmark %S; available: %s\n" name
        (String.concat ", "
           (List.map (fun e -> e.Cs_workloads.Suite.name) Cs_workloads.Suite.all));
      exit 1
  in
  Printf.printf "benchmark: %s — %s\n\n" entry.Cs_workloads.Suite.name
    entry.Cs_workloads.Suite.description;
  let table =
    Cs_util.Table.create
      ~header:[ "machine"; "scheduler"; "cycles"; "speedup"; "transfers"; "spills(16r)" ]
  in
  let machines =
    [ ("raw-4x4", Cs_machine.Raw.with_tiles 16, `Raw); ("vliw-4c", Cs_machine.Vliw.create (), `Vliw) ]
  in
  List.iter
    (fun (mname, machine, kind) ->
      List.iter
        (fun scheduler ->
          let n_clusters = Cs_machine.Machine.n_clusters machine in
          let m =
            match kind with
            | `Raw -> Cs_sim.Speedup.on_raw ~scheduler ~tiles:n_clusters entry
            | `Vliw -> Cs_sim.Speedup.on_vliw ~scheduler ~clusters:n_clusters entry
          in
          let region = entry.Cs_workloads.Suite.generate ~clusters:n_clusters () in
          let sched = Cs_sim.Pipeline.schedule ~scheduler ~machine region in
          let spills = (Cs_regalloc.Linear_scan.run ~registers:16 sched).Cs_regalloc.Linear_scan.total_spills in
          Cs_util.Table.add_row table
            [ mname; Cs_sim.Pipeline.scheduler_name scheduler;
              string_of_int m.Cs_sim.Speedup.cycles;
              Cs_util.Table.cell_float m.Cs_sim.Speedup.speedup;
              string_of_int (Cs_sched.Schedule.n_comms sched); string_of_int spills ])
        Cs_sim.Pipeline.all_schedulers;
      Cs_util.Table.add_separator table)
    machines;
  Cs_util.Table.print table
