(* The paper's Figure 4: watching the preference maps converge.

   Runs the convergent scheduler on an fpppp-kernel fragment and prints
   the cluster-preference map after selected passes, in the style of
   Fig. 4(b)-(g): one row per instruction, one column per cluster,
   denser glyph = stronger preference.

     dune exec examples/fpppp_trace.exe *)

let () =
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  (* A small fragment so the maps fit a terminal. *)
  let region =
    let b = Cs_ddg.Builder.create ~name:"fpppp-fragment" () in
    let load bank tag =
      let addr = Cs_ddg.Builder.op0 b ~tag:(tag ^ ".addr") Cs_ddg.Opcode.Const in
      Cs_ddg.Builder.load b ~preplace:bank ~tag addr
    in
    (* Two preplaced inputs on different clusters (the triangles of
       Fig. 4a), feeding interleaved fp chains. *)
    let x = load 1 "x" and y = load 3 "y" in
    let rec weave k a bch =
      if k = 0 then (a, bch)
      else
        let a' = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul a bch in
        let b' = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd bch a in
        weave (k - 1) a' b'
    in
    let a, bch = weave 5 x y in
    let out = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub a bch in
    Cs_ddg.Builder.mark_live_out b out;
    Cs_ddg.Builder.finish b
  in
  let interesting = [ "NOISE"; "PATH"; "PLACE"; "PLACEPROP"; "COMM"; "EMPHCP" ] in
  let shown = Hashtbl.create 8 in
  let observe pass_name w =
    if List.mem pass_name interesting && not (Hashtbl.mem shown pass_name) then begin
      Hashtbl.add shown pass_name ();
      Format.printf "@.after %s:@.%a@." pass_name Cs_core.Weights.pp_cluster_map w
    end
  in
  let result =
    Cs_core.Driver.run ~observe ~machine region (Cs_core.Sequence.vliw_default ())
  in
  Format.printf "@.final assignment: %s@."
    (String.concat " "
       (Array.to_list (Array.map string_of_int result.Cs_core.Driver.assignment)));
  let analysis = result.Cs_core.Driver.context.Cs_core.Context.analysis in
  let sched =
    Cs_sched.List_scheduler.run ~machine ~assignment:result.Cs_core.Driver.assignment
      ~priority:(Cs_sched.Priority.of_slots result.Cs_core.Driver.preferred_slot)
      ~analysis region
  in
  Cs_sched.Validator.check_exn sched;
  Format.printf "schedule makespan: %d cycles@." (Cs_sched.Schedule.makespan sched)
