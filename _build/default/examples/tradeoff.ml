(* The paper's Figure 1: the tradeoff between parallelism and locality.

   Eight instructions — three two-instruction multiply chains feeding a
   small add tree — on a machine with three single-unit clusters where
   communication costs one cycle. Conservative partitioning (everything
   on one cluster) wastes the parallelism; maximally aggressive
   partitioning drowns in communication; the good schedule is a careful
   tradeoff. We reproduce the effect by scheduling the same graph under
   three explicit assignments and under the convergent scheduler.

     dune exec examples/tradeoff.exe *)

(* A 3-cluster crossbar machine with one universal unit per cluster and
   1-cycle communication, like the example in the paper. *)
let machine =
  Cs_machine.Machine.make ~name:"fig1-3c"
    ~fus:(Array.make 3 [| Cs_machine.Fu.Universal |])
    ~topology:(Cs_machine.Topology.Crossbar { latency = 1 })
    ~latency:(fun _ -> 1) ()

let region =
  let b = Cs_ddg.Builder.create ~name:"fig1" () in
  let chain tag =
    let k = Cs_ddg.Builder.op0 b ~tag Cs_ddg.Opcode.Const in
    Cs_ddg.Builder.op1 b ~tag:(tag ^ "'") Cs_ddg.Opcode.Mul k
  in
  let m1 = chain "m1" and m2 = chain "m2" and m3 = chain "m3" in
  let s1 = Cs_ddg.Builder.op2 b ~tag:"s1" Cs_ddg.Opcode.Add m1 m2 in
  let _s2 = Cs_ddg.Builder.op2 b ~tag:"s2" Cs_ddg.Opcode.Add s1 m3 in
  Cs_ddg.Builder.finish b

let run name assignment =
  let analysis =
    Cs_ddg.Analysis.make ~latency:(Cs_machine.Machine.latency_of machine)
      region.Cs_ddg.Region.graph
  in
  let sched =
    Cs_sched.List_scheduler.run ~machine ~assignment
      ~priority:(Cs_sched.Priority.alap analysis) ~analysis region
  in
  Cs_sched.Validator.check_exn sched;
  Printf.printf "%-28s makespan %d cycles, %d transfers\n" name
    (Cs_sched.Schedule.makespan sched) (Cs_sched.Schedule.n_comms sched);
  Cs_sched.Schedule.makespan sched

let () =
  Format.printf "Figure 1: parallelism vs locality on %a@.@." Cs_machine.Machine.pp machine;
  (* (a) conservative: everything on cluster 0 -> serial, no comms *)
  let a = run "(a) all on one cluster" (Array.make 8 0) in
  (* (b) aggressive: every chain AND the adds spread apart -> comm-bound *)
  let b = run "(b) maximally spread" [| 0; 0; 1; 1; 2; 2; 1; 2 |] in
  (* (c) the careful tradeoff: chains apart, add tree with chain 1 *)
  let c = run "(c) careful tradeoff" [| 0; 0; 1; 1; 2; 2; 0; 0 |] in
  (* (d) what the convergent scheduler finds on its own *)
  let sched, _ = Cs_sim.Pipeline.convergent ~machine region in
  Printf.printf "%-28s makespan %d cycles, %d transfers\n" "(d) convergent scheduler"
    (Cs_sched.Schedule.makespan sched) (Cs_sched.Schedule.n_comms sched);
  let d = Cs_sched.Schedule.makespan sched in
  assert (c <= a && c <= b);
  assert (d <= a);
  Format.printf "@.the careful tradeoff beats both extremes, as in the paper's Fig. 1@."
