(** Congruence-style memory-bank mapping (Larsen & Amarasinghe, PACT'02;
    paper Sec. 5). Both compilers of the paper run a congruence pass
    that proves which cluster's memory bank each load/store touches and
    *preplaces* that instruction there. Our workload generators model
    the result: every memory reference carries an abstract element
    index, and this module maps indices to home banks. *)

type t

val interleaved : n_banks:int -> t
(** Element [i] lives on bank [i mod n_banks] — the paper's "memory
    addresses are interleaved across clusters". *)

val blocked : n_banks:int -> block:int -> t
(** Element [i] lives on bank [(i / block) mod n_banks]. *)

val unanalyzable : t
(** The congruence pass failed (paper: [fpppp-kernel], [sha]); no
    preplacement is generated. *)

val bank : t -> int -> int option
(** Home bank of an element index, if known. *)

val n_banks : t -> int option
