(** [swim] (Spec, Raw suite): shallow-water finite differences. Three
    coupled stencils per column (U, V, P arrays) with banked loads and
    stores — fat, parallel, heavily preplaced. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
