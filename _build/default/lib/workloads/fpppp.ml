let name = "fpppp-kernel"
let description = "fpppp inner loop: long cross-linked fp chains"

let generate ?(scale = 1) ~clusters:_ () =
  let rng = Cs_util.Rng.create 7001 in
  let b = Cs_ddg.Builder.create ~name () in
  let chains = 8 in
  let length = scale * 16 in
  let ops = [| Cs_ddg.Opcode.Fadd; Fsub; Fmul; Fmul; Fadd |] in
  (* A small pool of unbanked inputs loaded once and reused. *)
  let inputs =
    Array.init 8 (fun k ->
        let addr = Cs_ddg.Builder.op0 b ~tag:(Printf.sprintf "in%d.addr" k) Cs_ddg.Opcode.Const in
        Cs_ddg.Builder.load b ~tag:(Printf.sprintf "in%d" k) addr)
  in
  let tips = Array.map (fun _ -> Cs_util.Rng.choose rng inputs) (Array.make chains ()) in
  for step = 1 to length do
    for ch = 0 to chains - 1 do
      let op = Cs_util.Rng.choose rng ops in
      (* Mostly local progress; occasionally consume another chain's tip,
         creating the irregular cross links fpppp is known for. *)
      let other =
        if Cs_util.Rng.int rng 100 < 15 then tips.((ch + 1 + Cs_util.Rng.int rng (chains - 1)) mod chains)
        else Cs_util.Rng.choose rng inputs
      in
      tips.(ch) <- Cs_ddg.Builder.op2 b op tips.(ch) other;
      (* Rare long-latency operation deep in a chain. *)
      if step mod 16 = 8 && ch = 0 then
        tips.(ch) <- Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fsqrt tips.(ch)
    done
  done;
  Array.iter (fun tip -> Cs_ddg.Builder.mark_live_out b tip) tips;
  Cs_ddg.Builder.finish b
