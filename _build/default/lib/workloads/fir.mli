(** [fir] (VLIW suite): finite impulse response filter. Per output
    sample: eight banked tap loads, coefficient multiplies and an add
    reduction — multiply-accumulate parallelism with overlapping
    (reused) input windows. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
