(** [cholesky] (Nasa7 kernel, both targets): Cholesky factorization
    column step. A serial [fsqrt]/[fdiv] pivot chain gates parallel
    banked column scalings and a rank-1 update — a mix of one heavy
    critical path and banked data parallelism. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
