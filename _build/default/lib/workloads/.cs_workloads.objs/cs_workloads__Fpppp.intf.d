lib/workloads/fpppp.mli: Cs_ddg
