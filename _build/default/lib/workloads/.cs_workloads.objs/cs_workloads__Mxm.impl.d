lib/workloads/mxm.ml: Cs_ddg Dense List Printf Prog
