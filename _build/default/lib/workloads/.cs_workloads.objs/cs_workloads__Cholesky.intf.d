lib/workloads/cholesky.mli: Cs_ddg
