lib/workloads/mxm.mli: Cs_ddg
