lib/workloads/swim.mli: Cs_ddg
