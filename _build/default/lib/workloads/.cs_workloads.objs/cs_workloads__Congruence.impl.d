lib/workloads/congruence.ml:
