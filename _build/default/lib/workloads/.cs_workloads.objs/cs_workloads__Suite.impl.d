lib/workloads/suite.ml: Cholesky Cs_ddg Fir Fpppp Jacobi Life List Mxm Rbsorf Sha String Swim Tomcatv Vpenta Vvmul Yuv
