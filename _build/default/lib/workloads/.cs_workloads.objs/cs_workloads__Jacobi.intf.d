lib/workloads/jacobi.mli: Cs_ddg
