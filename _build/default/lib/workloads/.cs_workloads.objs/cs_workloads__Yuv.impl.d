lib/workloads/yuv.ml: Cs_ddg Dense List Printf Prog
