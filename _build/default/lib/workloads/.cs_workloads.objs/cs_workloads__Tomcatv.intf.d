lib/workloads/tomcatv.mli: Cs_ddg
