lib/workloads/cholesky.ml: Cs_ddg Dense List Printf Prog
