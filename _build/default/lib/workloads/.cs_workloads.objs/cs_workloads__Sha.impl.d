lib/workloads/sha.ml: Cs_ddg List Printf
