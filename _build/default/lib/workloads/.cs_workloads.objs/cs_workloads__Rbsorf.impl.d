lib/workloads/rbsorf.ml: Cs_ddg Dense Printf Prog
