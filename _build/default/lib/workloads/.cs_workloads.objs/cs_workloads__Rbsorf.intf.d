lib/workloads/rbsorf.mli: Cs_ddg
