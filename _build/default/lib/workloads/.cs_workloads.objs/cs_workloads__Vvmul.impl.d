lib/workloads/vvmul.ml: Cs_ddg Dense Printf Prog
