lib/workloads/jacobi.ml: Cs_ddg Dense Printf Prog
