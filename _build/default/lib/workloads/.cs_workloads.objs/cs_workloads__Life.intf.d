lib/workloads/life.mli: Cs_ddg
