lib/workloads/vpenta.mli: Cs_ddg
