lib/workloads/yuv.mli: Cs_ddg
