lib/workloads/vpenta.ml: Congruence Cs_ddg Printf Prog
