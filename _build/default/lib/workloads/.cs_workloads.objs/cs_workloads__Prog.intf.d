lib/workloads/prog.mli: Congruence Cs_ddg
