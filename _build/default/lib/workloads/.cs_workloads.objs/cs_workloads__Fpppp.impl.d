lib/workloads/fpppp.ml: Array Cs_ddg Cs_util Printf
