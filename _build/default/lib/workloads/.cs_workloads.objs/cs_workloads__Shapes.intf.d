lib/workloads/shapes.mli: Congruence Cs_ddg
