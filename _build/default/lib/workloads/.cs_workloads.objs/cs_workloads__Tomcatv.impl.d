lib/workloads/tomcatv.ml: Cs_ddg Dense Printf Prog
