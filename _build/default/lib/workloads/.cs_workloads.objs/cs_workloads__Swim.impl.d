lib/workloads/swim.ml: Cs_ddg Dense Printf Prog
