lib/workloads/prog.ml: Congruence Cs_ddg List
