lib/workloads/suite.mli: Cs_ddg
