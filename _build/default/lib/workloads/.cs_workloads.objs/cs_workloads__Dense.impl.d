lib/workloads/dense.ml: Congruence
