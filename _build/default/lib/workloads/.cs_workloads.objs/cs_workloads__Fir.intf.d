lib/workloads/fir.mli: Cs_ddg
