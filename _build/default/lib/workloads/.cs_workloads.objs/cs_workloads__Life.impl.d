lib/workloads/life.ml: Cs_ddg Dense Printf Prog
