lib/workloads/congruence.mli:
