lib/workloads/fir.ml: Cs_ddg Dense List Printf Prog
