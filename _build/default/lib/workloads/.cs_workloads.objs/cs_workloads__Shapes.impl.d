lib/workloads/shapes.ml: Array Congruence Cs_ddg Cs_util List Printf Prog
