lib/workloads/vvmul.mli: Cs_ddg
