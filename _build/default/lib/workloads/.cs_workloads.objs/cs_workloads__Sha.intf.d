lib/workloads/sha.mli: Cs_ddg
