let name = "fir"
let description = "FIR filter, unrolled output samples"

let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let outputs = scale * 16 in
  let taps = 8 in
  for o = 0 to outputs - 1 do
    let terms =
      List.init taps (fun k ->
          let x =
            Prog.banked_load b ~congruence ~index:(o + k)
              ~tag:(Printf.sprintf "x[%d]" (o + k))
              ()
          in
          let c = Prog.constant b ~tag:(Printf.sprintf "c[%d]" k) () in
          Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul c x)
    in
    let y = Prog.reduce b Cs_ddg.Opcode.Fadd terms in
    Prog.banked_store b ~congruence ~index:o ~tag:(Printf.sprintf "y[%d]" o) y
  done;
  Cs_ddg.Builder.finish b
