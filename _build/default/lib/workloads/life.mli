(** [life] (Raw benchmark suite): Conway's Game of Life generation
    step. Per cell: eight neighbor loads (column-interleaved banks), an
    integer add tree for the population count, the birth/survival rule
    as compares and a select, and a banked store. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
