let fp_ops = [| Cs_ddg.Opcode.Fadd; Fsub; Fmul |]
let int_ops = [| Cs_ddg.Opcode.Add; Sub; And; Or; Xor; Shl; Cmp |]

let thin ?(chains = 3) ?(length = 40) ?(cross_links = 8) ~seed () =
  let rng = Cs_util.Rng.create seed in
  let b = Cs_ddg.Builder.create ~name:"shape-thin" () in
  let chain_regs =
    Array.init chains (fun _ ->
        let seed_reg = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
        let regs = Array.make length seed_reg in
        let cur = ref seed_reg in
        for k = 1 to length - 1 do
          let op = Cs_util.Rng.choose rng fp_ops in
          let other = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
          cur := Cs_ddg.Builder.op2 b op !cur other;
          regs.(k) <- !cur
        done;
        regs)
  in
  (* Sparse cross links: a value from one chain feeds another chain. *)
  for _ = 1 to cross_links do
    let ca = Cs_util.Rng.int rng chains and cb = Cs_util.Rng.int rng chains in
    if ca <> cb then begin
      let pos = Cs_util.Rng.int rng (length - 1) in
      let from_reg = chain_regs.(ca).(pos) in
      let into = chain_regs.(cb).(length - 1) in
      ignore (Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd from_reg into)
    end
  done;
  Array.iter (fun regs -> Cs_ddg.Builder.mark_live_out b regs.(length - 1)) chain_regs;
  Cs_ddg.Builder.finish b

let fat ?(width = 32) ?(depth = 4) ~seed () =
  let rng = Cs_util.Rng.create seed in
  let b = Cs_ddg.Builder.create ~name:"shape-fat" () in
  for _ = 1 to width do
    let seed_reg = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
    let cur = ref seed_reg in
    for _ = 1 to depth do
      let op = Cs_util.Rng.choose rng fp_ops in
      let other = Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const in
      cur := Cs_ddg.Builder.op2 b op !cur other
    done;
    Cs_ddg.Builder.mark_live_out b !cur
  done;
  Cs_ddg.Builder.finish b

let layered ~n ?(width = 16) ?(edge_density = 1.5) ?(mem_fraction = 0.2)
    ?(congruence = Congruence.unanalyzable) ~seed () =
  if n <= 0 then invalid_arg "Shapes.layered: need positive size";
  let rng = Cs_util.Rng.create seed in
  let b = Cs_ddg.Builder.create ~name:(Printf.sprintf "layered-%d" n) () in
  (* Seed values so operand selection never has to emit extra
     (unbudgeted) constants mid-layer. *)
  let seeds = min n 4 in
  let values = ref (List.init seeds (fun _ -> Cs_ddg.Builder.op0 b Cs_ddg.Opcode.Const)) in
  let n_values = ref seeds in
  let emitted = ref seeds in
  let pick_operand () = List.nth !values (Cs_util.Rng.int rng !n_values) in
  while !emitted < n do
    let layer_size = min (n - !emitted) (1 + Cs_util.Rng.int rng width) in
    let fresh = ref [] in
    let produced = ref 0 in
    for _ = 1 to layer_size do
      if !emitted + !produced < n then begin
        let r =
          if Cs_util.Rng.float rng 1.0 < mem_fraction then begin
            let index = Cs_util.Rng.int rng 4096 in
            if Cs_util.Rng.bool rng || !values = [] then begin
              produced := !produced + 2 (* address const + load *);
              Prog.banked_load b ~congruence ~index ~tag:"m" ()
            end
            else begin
              Prog.banked_store b ~congruence ~index ~tag:"m" (pick_operand ());
              produced := !produced + 3 (* address const + store + const *);
              Prog.constant b ()
            end
          end
          else begin
            let op =
              if Cs_util.Rng.bool rng then Cs_util.Rng.choose rng fp_ops
              else Cs_util.Rng.choose rng int_ops
            in
            produced := !produced + 1;
            let n_srcs = 1 + min 1 (int_of_float edge_density) in
            if n_srcs = 1 then Cs_ddg.Builder.op1 b op (pick_operand ())
            else Cs_ddg.Builder.op2 b op (pick_operand ()) (pick_operand ())
          end
        in
        fresh := r :: !fresh
      end
    done;
    emitted := !emitted + !produced;
    (* Count every instruction emitted this layer, not just the value
       producers we track for operand selection. *)
    values := !fresh @ !values;
    n_values := List.length !values
  done;
  Cs_ddg.Builder.finish b
