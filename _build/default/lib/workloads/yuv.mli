(** [yuv] (VLIW suite): RGB to YUV color conversion. Per pixel: three
    banked loads, a 3x3 constant matrix of multiplies with add trees,
    three banked stores. Wide, regular parallelism with moderate
    per-pixel work. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
