let name = "vvmul"
let description = "elementwise vector multiply c[i] = a[i] * b[i]"

let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let elements = scale * 48 in
  for i = 0 to elements - 1 do
    let tag s = Printf.sprintf "%s[%d]" s i in
    let a = Prog.banked_load b ~congruence ~index:i ~tag:(tag "a") () in
    let v = Prog.banked_load b ~congruence ~index:i ~tag:(tag "b") () in
    let p = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul a v in
    Prog.banked_store b ~congruence ~index:i ~tag:(tag "c") p
  done;
  Cs_ddg.Builder.finish b
