let constant b ?(tag = "k") () = Cs_ddg.Builder.op0 b ~tag Cs_ddg.Opcode.Const

let banked_load b ~congruence ~index ?(tag = "") () =
  let addr = Cs_ddg.Builder.op0 b ~tag:(tag ^ ".addr") Cs_ddg.Opcode.Const in
  match Congruence.bank congruence index with
  | Some bank -> Cs_ddg.Builder.load b ~preplace:bank ~tag addr
  | None -> Cs_ddg.Builder.load b ~tag addr

let banked_store b ~congruence ~index ?(tag = "") value =
  let addr = Cs_ddg.Builder.op0 b ~tag:(tag ^ ".addr") Cs_ddg.Opcode.Const in
  match Congruence.bank congruence index with
  | Some bank -> Cs_ddg.Builder.store b ~preplace:bank ~tag ~addr value
  | None -> Cs_ddg.Builder.store b ~tag ~addr value

let rec reduce b op values =
  match values with
  | [] -> invalid_arg "Prog.reduce: empty list"
  | [ v ] -> v
  | values ->
    let rec pair acc = function
      | [] -> List.rev acc
      | [ v ] -> List.rev (v :: acc)
      | a :: b' :: rest -> pair (Cs_ddg.Builder.op2 b op a b' :: acc) rest
    in
    reduce b op (pair [] values)

let chain b op ~length seed =
  let rec go acc k =
    if k = 0 then acc
    else begin
      let other = Cs_ddg.Builder.op0 b ~tag:"link" Cs_ddg.Opcode.Const in
      go (Cs_ddg.Builder.op2 b op acc other) (k - 1)
    end
  in
  go seed length
