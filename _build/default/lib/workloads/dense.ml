(* Shared shape vocabulary for the dense-matrix benchmark generators.
   Each generator below mimics the dependence-graph shape the paper's
   compilers see after congruence analysis and unroll-by-clusters:
   banked memory anchors spread across all clusters, with per-element
   arithmetic between them. *)

let interleave ~clusters = Congruence.interleaved ~n_banks:clusters
