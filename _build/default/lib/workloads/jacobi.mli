(** [jacobi] (Raw benchmark suite): 5-point Jacobi relaxation. One
    region models an unrolled row sweep: per cell, four neighbor loads
    (column-interleaved banks), an add tree and a scale, then a banked
    store. Dense preplacement, wide parallelism. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
