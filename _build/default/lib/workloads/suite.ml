type entry = {
  name : string;
  description : string;
  generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t;
}

let entry name description generate = { name; description; generate }

let cholesky = entry Cholesky.name Cholesky.description Cholesky.generate
let tomcatv = entry Tomcatv.name Tomcatv.description Tomcatv.generate
let vpenta = entry Vpenta.name Vpenta.description Vpenta.generate
let mxm = entry Mxm.name Mxm.description Mxm.generate
let fpppp = entry Fpppp.name Fpppp.description Fpppp.generate
let sha = entry Sha.name Sha.description Sha.generate
let swim = entry Swim.name Swim.description Swim.generate
let jacobi = entry Jacobi.name Jacobi.description Jacobi.generate
let life = entry Life.name Life.description Life.generate
let vvmul = entry Vvmul.name Vvmul.description Vvmul.generate
let rbsorf = entry Rbsorf.name Rbsorf.description Rbsorf.generate
let yuv = entry Yuv.name Yuv.description Yuv.generate
let fir = entry Fir.name Fir.description Fir.generate

let raw_suite = [ cholesky; tomcatv; vpenta; mxm; fpppp; sha; swim; jacobi; life ]
let vliw_suite = [ vvmul; rbsorf; yuv; tomcatv; mxm; fir; cholesky ]

let all =
  raw_suite
  @ List.filter (fun e -> not (List.exists (fun r -> r.name = e.name) raw_suite)) vliw_suite

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = lower) all
