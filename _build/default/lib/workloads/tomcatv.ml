let name = "tomcatv"
let description = "vectorized mesh generation point update"

let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let points = scale * 16 in
  for j = 0 to points - 1 do
    let tag s = Printf.sprintf "%s[%d]" s j in
    let ld s dx = Prog.banked_load b ~congruence ~index:(j + dx) ~tag:(tag s) () in
    let xe = ld "xe" 1 and xw = ld "xw" (-1) and xn = ld "xn" 0 and xs = ld "xs" 0 in
    let ye = ld "ye" 1 and yw = ld "yw" (-1) and yn = ld "yn" 0 and ys = ld "ys" 0 in
    let dxx = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub xe xw in
    let dxy = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub xn xs in
    let dyx = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub ye yw in
    let dyy = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub yn ys in
    let a = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul dxy dxy in
    let a' = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul dyy dyy in
    let alpha = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd a a' in
    let g = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul dxx dxy in
    let g' = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul dyx dyy in
    let gamma = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd g g' in
    let rx = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul alpha dxx in
    let rx = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub rx gamma in
    let ry = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul alpha dyx in
    let ry = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fdiv ry alpha in
    Prog.banked_store b ~congruence ~index:j ~tag:(tag "rx") rx;
    Prog.banked_store b ~congruence ~index:j ~tag:(tag "ry") ry
  done;
  Cs_ddg.Builder.finish b
