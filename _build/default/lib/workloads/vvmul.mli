(** [vvmul] (VLIW suite): elementwise vector multiply
    [c\[i\] = a\[i\] * b\[i\]] — embarrassingly parallel with perfectly
    banked references; the easiest case for every assigner. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
