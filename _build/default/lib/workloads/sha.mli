(** [sha] (Raw suite): Secure Hash Algorithm compression rounds. Five
    chaining variables updated by rotations, bitwise mixing and adds —
    one long serial dependence chain with almost no exploitable
    parallelism and {e no} preplacement (the congruence pass has nothing
    to say). The paper's hard case: convergent scheduling loses to
    Rawcc here. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
