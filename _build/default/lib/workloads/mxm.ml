let name = "mxm"
let description = "dense matrix multiply, unrolled dot products"

let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let outputs = scale * 16 in
  let depth = 8 (* dot-product length per output *) in
  for o = 0 to outputs - 1 do
    let tag s k = Printf.sprintf "%s[%d][%d]" s o k in
    let products =
      List.init depth (fun k ->
          let a = Prog.banked_load b ~congruence ~index:k ~tag:(tag "a" k) () in
          let v = Prog.banked_load b ~congruence ~index:o ~tag:(tag "b" k) () in
          Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul a v)
    in
    let dot = Prog.reduce b Cs_ddg.Opcode.Fadd products in
    Prog.banked_store b ~congruence ~index:o ~tag:(Printf.sprintf "c[%d]" o) dot
  done;
  Cs_ddg.Builder.finish b
