let name = "vpenta"
let description = "simultaneous pentadiagonal inversions"

let generate ?(scale = 1) ~clusters () =
  let congruence = Congruence.blocked ~n_banks:clusters ~block:64 in
  let b = Cs_ddg.Builder.create ~name () in
  let systems = 16 in
  let steps = 3 * scale in
  for s = 0 to systems - 1 do
    (* System s's rows all live in block s: indices s*64 + k. *)
    let index k = (s * 64) + k in
    let tag name k = Printf.sprintf "%s[%d][%d]" name s k in
    let carry = ref (Prog.banked_load b ~congruence ~index:(index 0) ~tag:(tag "x" 0) ()) in
    for k = 1 to steps do
      let a = Prog.banked_load b ~congruence ~index:(index k) ~tag:(tag "a" k) () in
      let c = Prog.banked_load b ~congruence ~index:(index (k + 1)) ~tag:(tag "c" k) () in
      let num = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul a !carry in
      let num = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub c num in
      let den = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul a a in
      let x = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fdiv num den in
      Prog.banked_store b ~congruence ~index:(index k) ~tag:(tag "x" k) x;
      carry := x
    done
  done;
  Cs_ddg.Builder.finish b
