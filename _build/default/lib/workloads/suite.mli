(** Benchmark registry mirroring the paper's two evaluation suites
    (Sec. 5, "Benchmarks"). *)

type entry = {
  name : string;
  description : string;
  generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t;
}

val raw_suite : entry list
(** The nine benchmarks of Table 2 / Figs. 6-7: cholesky, tomcatv,
    vpenta, mxm, fpppp-kernel, sha, swim, jacobi, life. *)

val vliw_suite : entry list
(** The seven benchmarks of Figs. 8-9: vvmul, rbsorf, yuv, tomcatv,
    mxm, fir, cholesky. *)

val all : entry list
(** Union, without duplicates. *)

val find : string -> entry option
(** Case-insensitive lookup by name. *)
