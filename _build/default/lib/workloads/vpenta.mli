(** [vpenta] (Nasa7 kernel, Raw suite): simultaneous pentadiagonal
    matrix inversions. Each of the [clusters] independent systems is a
    serial elimination recurrence over banked rows — many medium-length
    chains whose memory lives on distinct banks, so preplacement alone
    nearly dictates a perfect partition. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
