let name = "yuv"
let description = "RGB to YUV color conversion, unrolled pixel loop"

let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let pixels = scale * 16 in
  for p = 0 to pixels - 1 do
    let tag s = Printf.sprintf "%s[%d]" s p in
    let r = Prog.banked_load b ~congruence ~index:p ~tag:(tag "r") () in
    let g = Prog.banked_load b ~congruence ~index:p ~tag:(tag "g") () in
    let bl = Prog.banked_load b ~congruence ~index:p ~tag:(tag "b") () in
    let dot () =
      let terms =
        List.map
          (fun v ->
            let k = Prog.constant b ~tag:"coef" () in
            Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul k v)
          [ r; g; bl ]
      in
      Prog.reduce b Cs_ddg.Opcode.Fadd terms
    in
    Prog.banked_store b ~congruence ~index:p ~tag:(tag "y") (dot ());
    Prog.banked_store b ~congruence ~index:p ~tag:(tag "u") (dot ());
    Prog.banked_store b ~congruence ~index:p ~tag:(tag "v") (dot ())
  done;
  Cs_ddg.Builder.finish b
