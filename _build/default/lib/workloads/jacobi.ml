let name = "jacobi"
let description = "5-point Jacobi relaxation, unrolled row sweep"

let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let cells = scale * 32 in
  for j = 0 to cells - 1 do
    let tag s = Printf.sprintf "%s[%d]" s j in
    let north = Prog.banked_load b ~congruence ~index:j ~tag:(tag "n") () in
    let south = Prog.banked_load b ~congruence ~index:j ~tag:(tag "s") () in
    let west = Prog.banked_load b ~congruence ~index:(j - 1) ~tag:(tag "w") () in
    let east = Prog.banked_load b ~congruence ~index:(j + 1) ~tag:(tag "e") () in
    let sum = Prog.reduce b Cs_ddg.Opcode.Fadd [ north; south; west; east ] in
    let quarter = Prog.constant b ~tag:"0.25" () in
    let relaxed = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul sum quarter in
    Prog.banked_store b ~congruence ~index:j ~tag:(tag "out") relaxed
  done;
  Cs_ddg.Builder.finish b
