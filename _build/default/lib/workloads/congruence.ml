type t =
  | Interleaved of int
  | Blocked of int * int
  | Unanalyzable

let interleaved ~n_banks =
  if n_banks <= 0 then invalid_arg "Congruence.interleaved: need positive banks";
  Interleaved n_banks

let blocked ~n_banks ~block =
  if n_banks <= 0 || block <= 0 then invalid_arg "Congruence.blocked: bad parameters";
  Blocked (n_banks, block)

let unanalyzable = Unanalyzable

let bank t index =
  let index = abs index in
  match t with
  | Interleaved n -> Some (index mod n)
  | Blocked (n, block) -> Some (index / block mod n)
  | Unanalyzable -> None

let n_banks = function
  | Interleaved n | Blocked (n, _) -> Some n
  | Unanalyzable -> None
