let name = "sha"
let description = "SHA-1 compression rounds (serial chaining)"

let generate ?(scale = 1) ~clusters:_ () =
  let b = Cs_ddg.Builder.create ~name () in
  let rounds = scale * 20 in
  let op2 = Cs_ddg.Builder.op2 b in
  let a = ref (Cs_ddg.Builder.op0 b ~tag:"h0" Cs_ddg.Opcode.Const) in
  let b' = ref (Cs_ddg.Builder.op0 b ~tag:"h1" Cs_ddg.Opcode.Const) in
  let c = ref (Cs_ddg.Builder.op0 b ~tag:"h2" Cs_ddg.Opcode.Const) in
  let d = ref (Cs_ddg.Builder.op0 b ~tag:"h3" Cs_ddg.Opcode.Const) in
  let e = ref (Cs_ddg.Builder.op0 b ~tag:"h4" Cs_ddg.Opcode.Const) in
  for t = 0 to rounds - 1 do
    (* f = (b & c) | (~b & d), approximated in our IR's bitwise ops. *)
    let bc = op2 Cs_ddg.Opcode.And !b' !c in
    let bd = op2 Cs_ddg.Opcode.Xor !b' !d in
    let f = op2 Cs_ddg.Opcode.Or bc bd in
    (* rotl5(a) *)
    let five = Cs_ddg.Builder.op0 b ~tag:"5" Cs_ddg.Opcode.Const in
    let hi = op2 Cs_ddg.Opcode.Shl !a five in
    let lo = op2 Cs_ddg.Opcode.Shr !a five in
    let rot_a = op2 Cs_ddg.Opcode.Or hi lo in
    (* The round's message word: unanalyzable load (no preplacement). *)
    let w_addr = Cs_ddg.Builder.op0 b ~tag:(Printf.sprintf "w%d.addr" t) Cs_ddg.Opcode.Const in
    let w = Cs_ddg.Builder.load b ~tag:(Printf.sprintf "w[%d]" t) w_addr in
    let k = Cs_ddg.Builder.op0 b ~tag:"k" Cs_ddg.Opcode.Const in
    let sum = op2 Cs_ddg.Opcode.Add rot_a f in
    let sum = op2 Cs_ddg.Opcode.Add sum !e in
    let sum = op2 Cs_ddg.Opcode.Add sum w in
    let temp = op2 Cs_ddg.Opcode.Add sum k in
    (* rotl30(b) *)
    let thirty = Cs_ddg.Builder.op0 b ~tag:"30" Cs_ddg.Opcode.Const in
    let bhi = op2 Cs_ddg.Opcode.Shl !b' thirty in
    let blo = op2 Cs_ddg.Opcode.Shr !b' thirty in
    let rot_b = op2 Cs_ddg.Opcode.Or bhi blo in
    e := !d;
    d := !c;
    c := rot_b;
    b' := !a;
    a := temp
  done;
  List.iter (fun r -> Cs_ddg.Builder.mark_live_out b !r) [ a; b'; c; d; e ];
  Cs_ddg.Builder.finish b
