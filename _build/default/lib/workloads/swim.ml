let name = "swim"
let description = "shallow-water model finite-difference step"

let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let columns = scale * 16 in
  for j = 0 to columns - 1 do
    let tag s = Printf.sprintf "%s[%d]" s j in
    let ld s dx = Prog.banked_load b ~congruence ~index:(j + dx) ~tag:(tag s) () in
    (* CU/CV/Z-style coupled stencils. *)
    let p0 = ld "p" 0 and p1 = ld "p+" 1 in
    let u0 = ld "u" 0 and u1 = ld "u+" 1 in
    let v0 = ld "v" 0 and v1 = ld "v+" 1 in
    let psum = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd p0 p1 in
    let cu = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul psum u1 in
    let cv = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul psum v1 in
    let du = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub u1 u0 in
    let dv = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub v1 v0 in
    let vort = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub dv du in
    let z = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fdiv vort psum in
    let h0 = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul u0 u0 in
    let h1 = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul v0 v0 in
    let h = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd h0 h1 in
    let h = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd h p0 in
    Prog.banked_store b ~congruence ~index:j ~tag:(tag "cu") cu;
    Prog.banked_store b ~congruence ~index:j ~tag:(tag "cv") cv;
    Prog.banked_store b ~congruence ~index:j ~tag:(tag "z") z;
    Prog.banked_store b ~congruence ~index:j ~tag:(tag "h") h
  done;
  Cs_ddg.Builder.finish b
