(** Parametric graph shapes: the two archetypes of the paper's Fig. 2
    (thin/critical-path-dominated vs fat/parallel) and random layered
    DAGs used for the compile-time scalability experiment (Fig. 10). *)

val thin :
  ?chains:int -> ?length:int -> ?cross_links:int -> seed:int -> unit -> Cs_ddg.Region.t
(** A few long dependence chains with sparse random cross links —
    non-numeric-code shape (Fig. 2a). No preplacement. *)

val fat : ?width:int -> ?depth:int -> seed:int -> unit -> Cs_ddg.Region.t
(** Many short independent chains — unrolled-numeric shape (Fig. 2b). *)

val layered :
  n:int -> ?width:int -> ?edge_density:float -> ?mem_fraction:float ->
  ?congruence:Congruence.t -> seed:int -> unit -> Cs_ddg.Region.t
(** Random layered DAG with approximately [n] instructions (never more;
    memory references cost several instructions each, so the final count
    can fall slightly short): layer [k] draws operands
    from layers [< k]. [mem_fraction] of instructions are loads/stores,
    banked by [congruence]. Used to sweep input sizes in Fig. 10. *)
