(** [mxm] (Nasa7 kernel, used on both targets): dense matrix multiply.
    The congruence pass unrolls by the number of clusters, so a region
    holds [clusters] independent dot products: per output, banked loads
    of a row/column pair, a multiply per element, an add reduction tree
    and a banked store — the archetypal fat, parallel graph of the
    paper's Fig. 2(b). *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
