let name = "rbsorf"
let description = "red-black SOR relaxation, red half-sweep"

(* Red and black cells are packed into separate arrays (the standard
   layout for red-black codes), so both colors span all banks. Red cell
   [k] reads black cells [k-1], [k], [k+1] and its own previous value. *)
let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let red_cells = scale * 24 in
  for k = 0 to red_cells - 1 do
    let tag s = Printf.sprintf "%s[%d]" s k in
    let ld s dx = Prog.banked_load b ~congruence ~index:(k + dx) ~tag:(tag s) () in
    let west = ld "bw" 0 and east = ld "be" 1 and north = ld "bn" (-1) and south = ld "bs" 0 in
    let sum = Prog.reduce b Cs_ddg.Opcode.Fadd [ west; east; north; south ] in
    let quarter = Prog.constant b ~tag:"0.25" () in
    let gauss = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul sum quarter in
    let self = Prog.banked_load b ~congruence ~index:k ~tag:(tag "self") () in
    let delta = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub gauss self in
    let omega = Prog.constant b ~tag:"omega" () in
    let step = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul omega delta in
    let next = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fadd self step in
    Prog.banked_store b ~congruence ~index:k ~tag:(tag "out") next
  done;
  Cs_ddg.Builder.finish b
