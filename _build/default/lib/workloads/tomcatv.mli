(** [tomcatv] (Spec95, both targets): vectorized mesh generation. Per
    mesh point: eight banked neighbor loads of the two coordinate
    arrays, difference/cross-term floating-point arithmetic including a
    divide, and two banked stores of the residuals. Moderate
    parallelism with realistic per-point work. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
