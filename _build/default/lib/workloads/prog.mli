(** Kernel-building helpers shared by the benchmark generators: banked
    memory references (address constant + preplaced load/store, the way
    congruence-analyzed code looks after lowering) and balanced
    reduction trees. *)

val banked_load :
  Cs_ddg.Builder.t -> congruence:Congruence.t -> index:int -> ?tag:string -> unit -> Cs_ddg.Reg.t
(** Emits the address constant and a load preplaced on the element's
    home bank (no preplacement when the congruence is unanalyzable). *)

val banked_store :
  Cs_ddg.Builder.t -> congruence:Congruence.t -> index:int -> ?tag:string ->
  Cs_ddg.Reg.t -> unit

val reduce : Cs_ddg.Builder.t -> Cs_ddg.Opcode.t -> Cs_ddg.Reg.t list -> Cs_ddg.Reg.t
(** Balanced binary reduction; raises [Invalid_argument] on []. *)

val chain :
  Cs_ddg.Builder.t -> Cs_ddg.Opcode.t -> length:int -> Cs_ddg.Reg.t -> Cs_ddg.Reg.t
(** Serial dependence chain [x -> op x k -> ...] of the given length;
    the second operand of each link is a fresh constant. *)

val constant : Cs_ddg.Builder.t -> ?tag:string -> unit -> Cs_ddg.Reg.t
