(** [rbsorf] (VLIW suite): red-black successive over-relaxation. The
    red half-sweep: per red cell, four black-neighbor loads, an add
    tree, the over-relaxation blend, and a banked store. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
