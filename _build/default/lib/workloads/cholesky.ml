let name = "cholesky"
let description = "Cholesky factorization column step"

let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let rows = scale * 16 in
  let columns = 2 * scale in
  let carried = ref None in
  for col = 0 to columns - 1 do
    let tag s r = Printf.sprintf "%s[%d][%d]" s col r in
    (* Pivot: load the diagonal, fold in the previous column's pivot (the
       loop-carried critical chain), take the square root. *)
    let diag = Prog.banked_load b ~congruence ~index:col ~tag:(tag "diag" col) () in
    let diag =
      match !carried with
      | None -> diag
      | Some prev -> Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub diag prev
    in
    let pivot = Cs_ddg.Builder.op1 b Cs_ddg.Opcode.Fsqrt diag in
    carried := Some pivot;
    (* Parallel column scaling: a[r][col] /= pivot, then the rank-1
       update against the freshly scaled column head. *)
    let scaled =
      List.init rows (fun r ->
          let v = Prog.banked_load b ~congruence ~index:r ~tag:(tag "a" r) () in
          let q = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fdiv v pivot in
          Prog.banked_store b ~congruence ~index:r ~tag:(tag "a'" r) q;
          q)
    in
    match scaled with
    | [] -> ()
    | head :: _ ->
      List.iteri
        (fun r q ->
          let u = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fmul q head in
          let prev = Prog.banked_load b ~congruence ~index:r ~tag:(tag "u" r) () in
          let upd = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Fsub prev u in
          Prog.banked_store b ~congruence ~index:r ~tag:(tag "u'" r) upd)
        scaled
  done;
  Cs_ddg.Builder.finish b
