(** [fpppp-kernel] (Spec95, Raw suite): the inner loop of fpppp —
    hundreds of floating-point operations forming a handful of long,
    irregularly cross-linked chains, the thin graph of the paper's
    Fig. 2(a). Almost no preplacement; good schedules require the
    parallelism/communication heuristics rather than PLACEPROP. *)

val name : string
val description : string
val generate : ?scale:int -> clusters:int -> unit -> Cs_ddg.Region.t
