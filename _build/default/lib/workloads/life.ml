let name = "life"
let description = "Game of Life generation step, unrolled row sweep"

let generate ?(scale = 1) ~clusters () =
  let congruence = Dense.interleave ~clusters in
  let b = Cs_ddg.Builder.create ~name () in
  let cells = scale * 32 in
  for j = 0 to cells - 1 do
    let tag s = Printf.sprintf "%s[%d]" s j in
    let neighbor dx =
      Prog.banked_load b ~congruence ~index:(j + dx) ~tag:(tag "nb") ()
    in
    (* Three rows of three neighbors, minus the cell itself. *)
    let neighbors =
      [ neighbor (-1); neighbor 0; neighbor 1; neighbor (-1); neighbor 1;
        neighbor (-1); neighbor 0; neighbor 1 ]
    in
    let count = Prog.reduce b Cs_ddg.Opcode.Add neighbors in
    let self = Prog.banked_load b ~congruence ~index:j ~tag:(tag "self") () in
    let three = Prog.constant b ~tag:"3" () in
    let two = Prog.constant b ~tag:"2" () in
    let born = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Cmp count three in
    let stays = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Cmp count two in
    let alive_rule = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.And stays self in
    let next = Cs_ddg.Builder.op2 b Cs_ddg.Opcode.Or born alive_rule in
    let next = Cs_ddg.Builder.op3 b Cs_ddg.Opcode.Select next self born in
    Prog.banked_store b ~congruence ~index:j ~tag:(tag "out") next
  done;
  Cs_ddg.Builder.finish b
