(** Multi-region compilation: values live across scheduling regions.

    The paper (Secs. 1 and 5) requires that "when a value is live across
    multiple scheduling regions, its definitions and uses must be mapped
    to a consistent cluster". This module models a program as a sequence
    of blocks passing named values forward and implements both home
    policies the paper describes:

    - {e Raw rule}: a value's home is the cluster of the first
      definition encountered; later regions see it as a homed live-in.
    - {e Chorus rule}: "all values that are live across multiple
      scheduling regions are mapped to the first cluster."

    The home policy is selected by the machine: meshes use the Raw rule,
    crossbars the Chorus rule. Every block's schedule pays real
    transfers for reading homed live-ins away from their home (see
    {!Cs_sched.Comm}). *)

type block = {
  label : string;
  region : Cs_ddg.Region.t;
  exports : (string * Cs_ddg.Reg.t) list;
  (** values this block defines that later blocks read, by name *)
  imports : (string * Cs_ddg.Reg.t) list;
  (** live-in registers of this block's region, bound to earlier
      exports by name *)
}

type t = {
  name : string;
  blocks : block list;
}

val validate : t -> (unit, string) result
(** Checks that every import is exported by an earlier block, every
    export register is defined in its block, every import register is a
    live-in of its block, and no name is exported twice. *)

type scheduled = {
  schedules : Cs_sched.Schedule.t list; (** one per block, in order *)
  total_cycles : int; (** blocks execute back-to-back *)
  homes : (string * int) list; (** value name -> home cluster *)
}

val schedule :
  ?seed:int -> scheduler:Pipeline.scheduler -> machine:Cs_machine.Machine.t ->
  t -> scheduled
(** Schedules blocks in order, assigning each exported value's home per
    the machine's rule and re-homing later blocks' imports accordingly.
    Every block schedule is validated. Raises [Invalid_argument] when
    {!validate} fails. *)

val sha_rounds : ?blocks:int -> ?scale:int -> unit -> t
(** A multi-region version of the [sha] benchmark: the compression
    rounds split across regions, the five chaining variables exported
    from each block to the next — the paper's canonical example of
    values live across scheduling regions. *)
