(** Speedup measurement exactly as the paper reports it: cycles of the
    benchmark compiled for a single-cluster machine divided by cycles on
    the target machine (Table 2: "Speedup is relative to performance on
    one tile"; Fig. 8: "relative to a single-cluster machine"). The
    benchmark is regenerated per configuration because the congruence
    pass unrolls by the cluster count. *)

type measurement = {
  benchmark : string;
  scheduler : Pipeline.scheduler;
  n_clusters : int;
  cycles : int;
  baseline_cycles : int; (** single-cluster cycles *)
  speedup : float;
  n_instrs : int;
}

val on_raw :
  ?seed:int -> ?scale:int -> scheduler:Pipeline.scheduler -> tiles:int ->
  Cs_workloads.Suite.entry -> measurement

val on_vliw :
  ?seed:int -> ?scale:int -> scheduler:Pipeline.scheduler -> clusters:int ->
  Cs_workloads.Suite.entry -> measurement

val baseline_cycles_raw : ?scale:int -> Cs_workloads.Suite.entry -> int
val baseline_cycles_vliw : ?scale:int -> Cs_workloads.Suite.entry -> int
