type scheduler = Convergent | Rawcc | Uas | Pcc | Bug | Anneal

let all_schedulers = [ Convergent; Rawcc; Uas; Pcc; Bug; Anneal ]

let scheduler_name = function
  | Convergent -> "convergent"
  | Rawcc -> "rawcc"
  | Uas -> "uas"
  | Pcc -> "pcc"
  | Bug -> "bug"
  | Anneal -> "anneal"

let scheduler_of_name name =
  match String.lowercase_ascii name with
  | "convergent" -> Some Convergent
  | "rawcc" -> Some Rawcc
  | "uas" -> Some Uas
  | "pcc" -> Some Pcc
  | "bug" -> Some Bug
  | "anneal" | "sa" -> Some Anneal
  | _ -> None

let default_passes ~machine =
  if Cs_machine.Machine.is_mesh machine then Cs_core.Sequence.raw_default ()
  else Cs_core.Sequence.vliw_default ()

let validated sched =
  Cs_sched.Validator.check_exn sched;
  sched

let convergent ?seed ?passes ~machine region =
  let passes = match passes with Some p -> p | None -> default_passes ~machine in
  let result = Cs_core.Driver.run ?seed ~machine region passes in
  let analysis = result.Cs_core.Driver.context.Cs_core.Context.analysis in
  let priority =
    if Cs_machine.Machine.is_mesh machine then Cs_sched.Priority.alap analysis
    else Cs_sched.Priority.of_slots result.Cs_core.Driver.preferred_slot
  in
  let sched =
    Cs_sched.List_scheduler.run ~machine
      ~assignment:result.Cs_core.Driver.assignment ~priority ~analysis region
  in
  (validated sched, result.Cs_core.Driver.trace)

let schedule ?seed ~scheduler ~machine region =
  match scheduler with
  | Convergent -> fst (convergent ?seed ~machine region)
  | Rawcc -> validated (Cs_baselines.Rawcc.schedule ~machine region)
  | Uas -> validated (Cs_baselines.Uas.schedule ~machine region)
  | Pcc -> validated (Cs_baselines.Pcc.schedule ~machine region)
  | Bug -> validated (Cs_baselines.Bug.schedule ~machine region)
  | Anneal -> validated (Cs_baselines.Anneal.schedule ?seed ~machine region)
