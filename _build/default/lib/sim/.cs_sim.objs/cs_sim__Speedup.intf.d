lib/sim/speedup.mli: Cs_workloads Pipeline
