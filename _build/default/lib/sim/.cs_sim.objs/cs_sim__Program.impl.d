lib/sim/program.ml: Array Cs_ddg Cs_machine Cs_sched Hashtbl List Option Pipeline Printf String
