lib/sim/interp.ml: Array Cs_ddg Cs_sched Hashtbl Int64 List Option Printf
