lib/sim/interp.mli: Cs_ddg Cs_sched
