lib/sim/pipeline.ml: Cs_baselines Cs_core Cs_machine Cs_sched String
