lib/sim/compile_time.mli: Cs_ddg Cs_machine Pipeline
