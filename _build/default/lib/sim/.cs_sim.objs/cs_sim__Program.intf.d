lib/sim/program.mli: Cs_ddg Cs_machine Cs_sched Pipeline
