lib/sim/speedup.ml: Cs_ddg Cs_machine Cs_sched Cs_workloads Pipeline
