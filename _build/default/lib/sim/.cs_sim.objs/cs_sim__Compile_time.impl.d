lib/sim/compile_time.ml: Cs_baselines Cs_core Cs_ddg Cs_machine Cs_sched Cs_workloads List Pipeline Sys
