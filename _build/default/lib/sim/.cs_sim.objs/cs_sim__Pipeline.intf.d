lib/sim/pipeline.mli: Cs_core Cs_ddg Cs_machine Cs_sched
