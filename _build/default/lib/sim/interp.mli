(** Functional dataflow interpretation: a semantic check that a schedule
    computes exactly what the original region computes.

    Every opcode is given a deterministic 64-bit denotation (a mixing
    function of its operand values; live-ins and constants derive their
    value from their identity). Evaluating the region in program order
    and re-evaluating it in schedule order — consuming each operand at
    the consumer's issue cycle, only accepting values that have actually
    arrived on the consumer's cluster — must produce identical values
    for every register and every store. Together with
    {!Cs_sched.Validator} this closes the loop: schedules are not just
    resource-legal, they are observationally equivalent to the source.

    Used by integration tests and property tests over every scheduler. *)

val reference : Cs_ddg.Region.t -> int64 Cs_ddg.Reg.Map.t
(** Program-order evaluation: value of every register defined in the
    region (live-ins included). *)

val of_schedule : Cs_sched.Schedule.t -> (int64 Cs_ddg.Reg.Map.t, string) result
(** Schedule-order evaluation. Instructions are executed by increasing
    issue cycle; an operand read fails (returning [Error]) if its value
    has not been produced and delivered to the executing cluster by the
    consumer's issue cycle. *)

val equivalent : Cs_ddg.Region.t -> Cs_sched.Schedule.t -> (unit, string) result
(** [reference] and [of_schedule] agree on every defined register. *)
