(* Deterministic 64-bit denotations. The only property that matters is
   that the value of an instruction is a function of its opcode and its
   operand values (plus identity for value sources), so any evaluation
   order consistent with the dataflow produces the same values. *)

let mix seed v =
  let open Int64 in
  let z = add (logxor seed v) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  logxor z (shift_right_logical z 27)

let opcode_seed op = Int64.of_int (Hashtbl.hash (Cs_ddg.Opcode.to_string op))

let denote op args =
  List.fold_left mix (opcode_seed op) args

let live_in_value r = mix 0x5EEDL (Int64.of_int r)

let eval_instr ~lookup ins =
  let args = List.map lookup ins.Cs_ddg.Instr.srcs in
  denote ins.Cs_ddg.Instr.op args

let reference region =
  let graph = region.Cs_ddg.Region.graph in
  let env = ref Cs_ddg.Reg.Map.empty in
  Cs_ddg.Reg.Set.iter
    (fun r -> env := Cs_ddg.Reg.Map.add r (live_in_value r) !env)
    (Cs_ddg.Graph.live_in_regs graph);
  let lookup r =
    match Cs_ddg.Reg.Map.find_opt r !env with
    | Some v -> v
    | None -> invalid_arg "Interp.reference: operand evaluated before definition"
  in
  Array.iter
    (fun i ->
      let ins = Cs_ddg.Graph.instr graph i in
      let v = eval_instr ~lookup ins in
      match ins.Cs_ddg.Instr.dst with
      | Some r -> env := Cs_ddg.Reg.Map.add r v !env
      | None -> ())
    (Cs_ddg.Graph.topo_order graph);
  !env

let of_schedule sched =
  let graph = sched.Cs_sched.Schedule.graph in
  let entries = sched.Cs_sched.Schedule.entries in
  let n = Cs_ddg.Graph.n graph in
  (* Execute by increasing issue cycle (ties by cluster then id: ties are
     independent instructions, so any order works). *)
  let order = List.init n (fun i -> i) in
  let order =
    List.sort
      (fun a b ->
        compare
          (entries.(a).Cs_sched.Schedule.start, entries.(a).Cs_sched.Schedule.cluster, a)
          (entries.(b).Cs_sched.Schedule.start, entries.(b).Cs_sched.Schedule.cluster, b))
      order
  in
  let env = ref Cs_ddg.Reg.Map.empty in
  Cs_ddg.Reg.Set.iter
    (fun r -> env := Cs_ddg.Reg.Map.add r (live_in_value r) !env)
    (Cs_ddg.Graph.live_in_regs graph);
  let problem = ref None in
  let availability consumer r =
    (* When does register [r]'s value become readable on the consumer's
       cluster? Un-homed live-ins are available everywhere at cycle 0;
       homed live-ins must be delivered off their home cluster. *)
    match Cs_ddg.Graph.defining_instr graph r with
    | None ->
      let cluster = entries.(consumer).Cs_sched.Schedule.cluster in
      (match Cs_ddg.Reg.Map.find_opt r sched.Cs_sched.Schedule.live_in_homes with
      | Some home when home <> cluster ->
        let pseudo = Cs_sched.Schedule.live_in_producer r in
        List.find_opt
          (fun (cm : Cs_sched.Schedule.comm) -> cm.producer = pseudo && cm.dst = cluster)
          sched.Cs_sched.Schedule.comms
        |> Option.map (fun (cm : Cs_sched.Schedule.comm) -> cm.arrive)
      | Some _ | None -> Some 0)
    | Some p ->
      let ep = entries.(p) and ec = entries.(consumer) in
      if ep.Cs_sched.Schedule.cluster = ec.Cs_sched.Schedule.cluster then
        Some ep.Cs_sched.Schedule.finish
      else
        Option.map
          (fun (cm : Cs_sched.Schedule.comm) -> cm.arrive)
          (Cs_sched.Schedule.comms_for sched ~producer:p ~dst:ec.Cs_sched.Schedule.cluster)
  in
  List.iter
    (fun i ->
      if !problem = None then begin
        let ins = Cs_ddg.Graph.instr graph i in
        let issue = entries.(i).Cs_sched.Schedule.start in
        List.iter
          (fun r ->
            match availability i r with
            | Some t when t <= issue -> ()
            | Some t ->
              problem :=
                Some
                  (Printf.sprintf "i%d reads %s at cycle %d but it arrives at %d" i
                     (Cs_ddg.Reg.to_string r) issue t)
            | None ->
              problem :=
                Some
                  (Printf.sprintf "i%d reads %s but no delivery to its cluster exists" i
                     (Cs_ddg.Reg.to_string r)))
          ins.Cs_ddg.Instr.srcs;
        if !problem = None then begin
          let lookup r =
            match Cs_ddg.Reg.Map.find_opt r !env with
            | Some v -> v
            | None -> 0L (* unreachable: availability checked above *)
          in
          let v = eval_instr ~lookup ins in
          match ins.Cs_ddg.Instr.dst with
          | Some r -> env := Cs_ddg.Reg.Map.add r v !env
          | None -> ()
        end
      end)
    order;
  match !problem with Some msg -> Error msg | None -> Ok !env

let equivalent region sched =
  let expected = reference region in
  match of_schedule sched with
  | Error msg -> Error msg
  | Ok actual ->
    let mismatch = ref None in
    Cs_ddg.Reg.Map.iter
      (fun r v ->
        if !mismatch = None then
          match Cs_ddg.Reg.Map.find_opt r actual with
          | Some v' when Int64.equal v v' -> ()
          | Some _ ->
            mismatch := Some (Printf.sprintf "value of %s differs" (Cs_ddg.Reg.to_string r))
          | None ->
            mismatch := Some (Printf.sprintf "%s never computed" (Cs_ddg.Reg.to_string r)))
      expected;
    (match !mismatch with Some msg -> Error msg | None -> Ok ())
