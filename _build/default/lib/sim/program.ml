type block = {
  label : string;
  region : Cs_ddg.Region.t;
  exports : (string * Cs_ddg.Reg.t) list;
  imports : (string * Cs_ddg.Reg.t) list;
}

type t = {
  name : string;
  blocks : block list;
}

let validate t =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let exported = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let graph = b.region.Cs_ddg.Region.graph in
      List.iter
        (fun (name, r) ->
          if Hashtbl.mem exported name then fail "%s: name %S exported twice" b.label name;
          (* An export is either defined in the block or passed through
             from a live-in (a value the block leaves untouched). *)
          if
            Cs_ddg.Graph.defining_instr graph r = None
            && not (Cs_ddg.Reg.Set.mem r (Cs_ddg.Graph.live_in_regs graph))
          then
            fail "%s: export %S register %s neither defined nor live-in" b.label name
              (Cs_ddg.Reg.to_string r);
          Hashtbl.replace exported name ())
        b.exports;
      List.iter
        (fun (name, r) ->
          if not (Hashtbl.mem exported name) then
            fail "%s: import %S not exported by an earlier block" b.label name;
          if not (Cs_ddg.Reg.Set.mem r (Cs_ddg.Graph.live_in_regs graph)) then
            fail "%s: import %S register %s is not a live-in" b.label name
              (Cs_ddg.Reg.to_string r))
        b.imports)
    t.blocks;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps))

type scheduled = {
  schedules : Cs_sched.Schedule.t list;
  total_cycles : int;
  homes : (string * int) list;
}

let schedule ?seed ~scheduler ~machine t =
  (match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Program.schedule: " ^ msg));
  let chorus_rule = not (Cs_machine.Machine.is_mesh machine) in
  let homes = Hashtbl.create 16 in
  let schedules = ref [] in
  List.iter
    (fun b ->
      (* Re-home this block's imports from already-decided value homes. *)
      let live_in_homes =
        List.fold_left
          (fun acc (name, r) ->
            match Hashtbl.find_opt homes name with
            | Some home -> Cs_ddg.Reg.Map.add r home acc
            | None -> acc)
          b.region.Cs_ddg.Region.live_in_homes b.imports
      in
      let region = { b.region with Cs_ddg.Region.live_in_homes } in
      let sched = Pipeline.schedule ?seed ~scheduler ~machine region in
      schedules := sched :: !schedules;
      (* Decide homes of this block's exports. *)
      List.iter
        (fun (name, r) ->
          let home =
            if chorus_rule then 0
            else begin
              match Cs_ddg.Graph.defining_instr region.Cs_ddg.Region.graph r with
              | Some d ->
                sched.Cs_sched.Schedule.entries.(d).Cs_sched.Schedule.cluster
              | None ->
                (* Pass-through export: the value keeps living wherever it
                   already was. *)
                Option.value ~default:0 (Cs_ddg.Reg.Map.find_opt r live_in_homes)
            end
          in
          Hashtbl.replace homes name home)
        b.exports)
    t.blocks;
  let schedules = List.rev !schedules in
  {
    schedules;
    total_cycles = List.fold_left (fun acc s -> acc + Cs_sched.Schedule.makespan s) 0 schedules;
    homes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) homes [] |> List.sort compare;
  }

(* A multi-block sha: each block runs [rounds/blocks] compression rounds
   and hands the five chaining variables to the next block. *)
let sha_rounds ?(blocks = 4) ?(scale = 1) () =
  if blocks <= 0 then invalid_arg "Program.sha_rounds: need positive blocks";
  let rounds_per_block = max 1 (scale * 20 / blocks) in
  let chain_names = [ "a"; "b"; "c"; "d"; "e" ] in
  let make_block index =
    let b = Cs_ddg.Builder.create ~name:(Printf.sprintf "sha.%d" index) () in
    let mk_var name =
      if index = 0 then Cs_ddg.Builder.op0 b ~tag:name Cs_ddg.Opcode.Const
      else Cs_ddg.Builder.live_in b
    in
    let vars = List.map (fun n -> (n, ref (mk_var n))) chain_names in
    let imports =
      if index = 0 then [] else List.map (fun (n, r) -> (Printf.sprintf "%s%d" n index, !r)) vars
    in
    let get n = !(List.assoc n vars) in
    let set n v = List.assoc n vars := v in
    let op2 = Cs_ddg.Builder.op2 b in
    for t = 0 to rounds_per_block - 1 do
      let bc = op2 Cs_ddg.Opcode.And (get "b") (get "c") in
      let bd = op2 Cs_ddg.Opcode.Xor (get "b") (get "d") in
      let f = op2 Cs_ddg.Opcode.Or bc bd in
      let five = Cs_ddg.Builder.op0 b ~tag:"5" Cs_ddg.Opcode.Const in
      let hi = op2 Cs_ddg.Opcode.Shl (get "a") five in
      let lo = op2 Cs_ddg.Opcode.Shr (get "a") five in
      let rot_a = op2 Cs_ddg.Opcode.Or hi lo in
      let w_addr =
        Cs_ddg.Builder.op0 b ~tag:(Printf.sprintf "w%d.%d.addr" index t) Cs_ddg.Opcode.Const
      in
      let w = Cs_ddg.Builder.load b ~tag:(Printf.sprintf "w[%d.%d]" index t) w_addr in
      let k = Cs_ddg.Builder.op0 b ~tag:"k" Cs_ddg.Opcode.Const in
      let sum = op2 Cs_ddg.Opcode.Add rot_a f in
      let sum = op2 Cs_ddg.Opcode.Add sum (get "e") in
      let sum = op2 Cs_ddg.Opcode.Add sum w in
      let temp = op2 Cs_ddg.Opcode.Add sum k in
      let thirty = Cs_ddg.Builder.op0 b ~tag:"30" Cs_ddg.Opcode.Const in
      let bhi = op2 Cs_ddg.Opcode.Shl (get "b") thirty in
      let blo = op2 Cs_ddg.Opcode.Shr (get "b") thirty in
      let rot_b = op2 Cs_ddg.Opcode.Or bhi blo in
      set "e" (get "d");
      set "d" (get "c");
      set "c" rot_b;
      set "b" (get "a");
      set "a" temp
    done;
    List.iter (fun (_, r) -> Cs_ddg.Builder.mark_live_out b !r) vars;
    let exports =
      List.map (fun (n, r) -> (Printf.sprintf "%s%d" n (index + 1), !r)) vars
    in
    { label = Printf.sprintf "sha.%d" index; region = Cs_ddg.Builder.finish b; exports; imports }
  in
  { name = "sha-multiblock"; blocks = List.init blocks make_block }
