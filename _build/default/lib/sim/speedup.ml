type measurement = {
  benchmark : string;
  scheduler : Pipeline.scheduler;
  n_clusters : int;
  cycles : int;
  baseline_cycles : int;
  speedup : float;
  n_instrs : int;
}

(* On one cluster every scheduler degenerates to plain list scheduling,
   so the baseline is scheduler-independent. *)
let baseline_cycles ~machine entry ~scale =
  let region = entry.Cs_workloads.Suite.generate ~scale ~clusters:1 () in
  let sched = Pipeline.schedule ~scheduler:Pipeline.Rawcc ~machine region in
  Cs_sched.Schedule.makespan sched

let baseline_cycles_raw ?(scale = 1) entry =
  baseline_cycles ~machine:(Cs_machine.Raw.with_tiles 1) entry ~scale

let baseline_cycles_vliw ?(scale = 1) entry =
  baseline_cycles ~machine:(Cs_machine.Vliw.single_cluster ()) entry ~scale

let measure ?seed ~scale ~scheduler ~machine ~baseline entry =
  let n_clusters = Cs_machine.Machine.n_clusters machine in
  let region = entry.Cs_workloads.Suite.generate ~scale ~clusters:n_clusters () in
  let sched = Pipeline.schedule ?seed ~scheduler ~machine region in
  let cycles = Cs_sched.Schedule.makespan sched in
  {
    benchmark = entry.Cs_workloads.Suite.name;
    scheduler;
    n_clusters;
    cycles;
    baseline_cycles = baseline;
    speedup = float_of_int baseline /. float_of_int (max 1 cycles);
    n_instrs = Cs_ddg.Region.n_instrs region;
  }

let on_raw ?seed ?(scale = 1) ~scheduler ~tiles entry =
  let machine = Cs_machine.Raw.with_tiles tiles in
  let baseline = baseline_cycles_raw ~scale entry in
  measure ?seed ~scale ~scheduler ~machine ~baseline entry

let on_vliw ?seed ?(scale = 1) ~scheduler ~clusters entry =
  let machine = Cs_machine.Vliw.create ~n_clusters:clusters () in
  let baseline = baseline_cycles_vliw ~scale entry in
  measure ?seed ~scale ~scheduler ~machine ~baseline entry
