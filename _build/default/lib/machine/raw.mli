(** The Raw machine (Taylor et al., IEEE Micro 2002): an [rows x cols]
    mesh of single-issue tiles connected by a compiler-controlled static
    network. Static-network latency is 3 cycles between neighbors plus
    1 cycle per additional hop (paper Sec. 5). *)

val create : ?rows:int -> ?cols:int -> unit -> Machine.t
(** Default 4x4 (the Raw prototype). *)

val with_tiles : int -> Machine.t
(** [with_tiles n] builds the squarest mesh with [n] tiles. [n] must be
    expressible as [r*c] with [r <= c] both powers of two for the
    configurations of the paper (1, 2, 4, 8, 16); other products are
    accepted when an exact factorization exists. *)
