lib/machine/latency.mli: Cs_ddg
