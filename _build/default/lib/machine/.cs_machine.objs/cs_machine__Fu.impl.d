lib/machine/fu.ml: Cs_ddg Format
