lib/machine/fu.mli: Cs_ddg Format
