lib/machine/machine.mli: Cs_ddg Format Fu Topology
