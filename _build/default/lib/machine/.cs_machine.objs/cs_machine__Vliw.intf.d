lib/machine/vliw.mli: Machine
