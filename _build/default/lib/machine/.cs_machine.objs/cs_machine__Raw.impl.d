lib/machine/raw.ml: Array Fu Machine Printf Topology
