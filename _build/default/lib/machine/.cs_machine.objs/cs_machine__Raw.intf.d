lib/machine/raw.mli: Machine
