lib/machine/vliw.ml: Array Fu Machine Printf Topology
