lib/machine/latency.ml: Cs_ddg
