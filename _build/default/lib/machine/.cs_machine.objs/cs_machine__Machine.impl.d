lib/machine/machine.ml: Array Cs_ddg Format Fu Latency Printf String Topology
