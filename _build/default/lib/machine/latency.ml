let r4000 op =
  match op with
  | Cs_ddg.Opcode.Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Select -> 1
  | Mul -> 2
  | Div -> 8
  | Load -> 2
  | Store -> 1
  | Fadd | Fsub -> 4
  | Fmul -> 4
  | Fcmp -> 2
  | Fdiv -> 12
  | Fsqrt -> 14
  | Mov | Const -> 1
  | Transfer -> 1
  | Recv -> 1

let unit_latency (_ : Cs_ddg.Opcode.t) = 1
