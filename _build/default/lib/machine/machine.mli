(** A complete spatial-machine description: clusters with functional
    units, an interconnect, a latency model, and a memory model. Both
    target machines of the paper (Raw, clustered VLIW) and their
    single-cluster baselines are instances. *)

type t = {
  name : string;
  n_clusters : int;
  fus : Fu.kind array array; (** functional units of each cluster *)
  topology : Topology.t;
  latency : Cs_ddg.Opcode.t -> int;
  remote_mem_penalty : int;
  (** extra cycles when a memory op's home bank is a different cluster
      (clustered VLIW interleaved memory, paper Sec. 5) *)
}

val make :
  name:string -> fus:Fu.kind array array -> topology:Topology.t ->
  ?latency:(Cs_ddg.Opcode.t -> int) -> ?remote_mem_penalty:int -> unit -> t
(** Default latency model is {!Latency.r4000}; default penalty 0.
    Raises [Invalid_argument] if a mesh topology size disagrees with the
    number of clusters. *)

val n_clusters : t -> int
val issue_width : t -> int
(** Functional units per cluster (uniform machines only; all ours are). *)

val latency_of : t -> Cs_ddg.Instr.t -> int

val can_execute : t -> cluster:int -> Cs_ddg.Opcode.t -> bool
(** Some functional unit of [cluster] accepts the opcode. *)

val fus_for : t -> cluster:int -> Cs_ddg.Opcode.t -> int list
(** Indices (within the cluster) of units that accept the opcode. *)

val comm_latency : t -> src:int -> dst:int -> int
val hops : t -> int -> int -> int
val is_mesh : t -> bool

val validate_region : t -> Cs_ddg.Region.t -> (unit, string) result
(** Checks every preplacement and live-in home fits this machine and
    every opcode is executable somewhere. *)

val pp : Format.formatter -> t -> unit
