let cluster_fus = [| Fu.Int_alu; Fu.Int_mem; Fu.Float_unit; Fu.Transfer_unit |]

let create ?(n_clusters = 4) () =
  if n_clusters <= 0 then invalid_arg "Vliw.create: need a positive cluster count";
  Machine.make
    ~name:(Printf.sprintf "vliw-%dc" n_clusters)
    ~fus:(Array.init n_clusters (fun _ -> Array.copy cluster_fus))
    ~topology:(Topology.Crossbar { latency = 1 })
    ~remote_mem_penalty:1 ()

let single_cluster () = create ~n_clusters:1 ()
