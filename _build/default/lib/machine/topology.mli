(** Interconnect models.

    [Mesh] is Raw's compiler-routed static network: register-mapped
    ports, three cycles of latency between neighboring tiles and one
    extra cycle per additional hop (paper Sec. 5). Routes are dimension
    ordered (X then Y) and each hop occupies a directed link for one
    cycle, which the scheduler books in a reservation table.

    [Crossbar] is the clustered-VLIW copy network: any-to-any, fixed
    latency, bandwidth limited by each cluster's transfer unit rather
    than by links. *)

type t =
  | Mesh of { rows : int; cols : int; base_latency : int; per_hop : int }
  | Crossbar of { latency : int }

val n_nodes : t -> int

val coords : t -> int -> int * int
(** Mesh only: [row, col] of a node id. *)

val hops : t -> int -> int -> int
(** Number of network hops between two nodes (0 when equal; 1 for any
    distinct pair on a crossbar; Manhattan distance on a mesh). *)

val comm_latency : t -> src:int -> dst:int -> int
(** End-to-end latency of moving a register value; 0 when [src = dst]. *)

type link = { from_node : int; to_node : int }
(** A directed mesh link between adjacent tiles. *)

val route : t -> src:int -> dst:int -> link list
(** Dimension-ordered route as a list of directed links; empty when
    [src = dst] or on a crossbar. *)

val pp : Format.formatter -> t -> unit
