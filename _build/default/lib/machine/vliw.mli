(** The Chorus-style clustered VLIW machine (paper Sec. 5): identical
    clusters, each with one integer ALU, one integer ALU/memory unit,
    one floating-point unit, and one transfer unit. Copying a register
    between clusters takes one cycle (on the source cluster's transfer
    unit). Memory is interleaved across clusters; accessing a remote
    bank costs one extra cycle. *)

val create : ?n_clusters:int -> unit -> Machine.t
(** Default 4 clusters, the paper's evaluation machine. *)

val single_cluster : unit -> Machine.t
(** The speedup baseline machine of Fig. 8. *)
