type t =
  | Mesh of { rows : int; cols : int; base_latency : int; per_hop : int }
  | Crossbar of { latency : int }

type link = { from_node : int; to_node : int }

let n_nodes = function
  | Mesh { rows; cols; _ } -> rows * cols
  | Crossbar _ -> max_int (* unconstrained; the machine bounds clusters *)

let coords t id =
  match t with
  | Mesh { cols; _ } -> (id / cols, id mod cols)
  | Crossbar _ -> invalid_arg "Topology.coords: not a mesh"

let hops t a b =
  if a = b then 0
  else
    match t with
    | Crossbar _ -> 1
    | Mesh { cols; _ } ->
      let ra = a / cols and ca = a mod cols in
      let rb = b / cols and cb = b mod cols in
      abs (ra - rb) + abs (ca - cb)

let comm_latency t ~src ~dst =
  if src = dst then 0
  else
    match t with
    | Crossbar { latency } -> latency
    | Mesh { base_latency; per_hop; _ } ->
      base_latency + (per_hop * (hops t src dst - 1))

let route t ~src ~dst =
  if src = dst then []
  else
    match t with
    | Crossbar _ -> []
    | Mesh { cols; _ } ->
      (* X (column) first, then Y (row). *)
      let acc = ref [] in
      let cur = ref src in
      let step next =
        acc := { from_node = !cur; to_node = next } :: !acc;
        cur := next
      in
      let target_col = dst mod cols and target_row = dst / cols in
      while !cur mod cols <> target_col do
        let col = !cur mod cols in
        let next_col = if col < target_col then col + 1 else col - 1 in
        step ((!cur / cols * cols) + next_col)
      done;
      while !cur / cols <> target_row do
        let row = !cur / cols in
        let next_row = if row < target_row then row + 1 else row - 1 in
        step ((next_row * cols) + (!cur mod cols))
      done;
      List.rev !acc

let pp fmt = function
  | Mesh { rows; cols; base_latency; per_hop } ->
    Format.fprintf fmt "mesh %dx%d (lat %d + %d/hop)" rows cols base_latency per_hop
  | Crossbar { latency } -> Format.fprintf fmt "crossbar (lat %d)" latency
