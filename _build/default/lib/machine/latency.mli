(** MIPS R4000-style instruction latencies (both the Raw prototype and
    the Chorus clustered VLIW base their ISAs on the R4000, paper
    Sec. 5). Values are issue-to-use distances in cycles. *)

val r4000 : Cs_ddg.Opcode.t -> int

val unit_latency : Cs_ddg.Opcode.t -> int
(** Every opcode takes one cycle — used by tests to make hand-checked
    schedules easy to reason about. *)
