type t = {
  name : string;
  n_clusters : int;
  fus : Fu.kind array array;
  topology : Topology.t;
  latency : Cs_ddg.Opcode.t -> int;
  remote_mem_penalty : int;
}

let make ~name ~fus ~topology ?(latency = Latency.r4000) ?(remote_mem_penalty = 0) () =
  let n_clusters = Array.length fus in
  if n_clusters = 0 then invalid_arg "Machine.make: no clusters";
  (match topology with
  | Topology.Mesh { rows; cols; _ } ->
    if rows * cols <> n_clusters then
      invalid_arg "Machine.make: mesh size disagrees with cluster count"
  | Topology.Crossbar _ -> ());
  { name; n_clusters; fus; topology; latency; remote_mem_penalty }

let n_clusters t = t.n_clusters
let issue_width t = Array.length t.fus.(0)

let latency_of t ins = t.latency ins.Cs_ddg.Instr.op

let fus_for t ~cluster op =
  let cls = Cs_ddg.Opcode.cls op in
  let units = t.fus.(cluster) in
  let acc = ref [] in
  for u = Array.length units - 1 downto 0 do
    if Fu.can_execute units.(u) cls then acc := u :: !acc
  done;
  !acc

let can_execute t ~cluster op = fus_for t ~cluster op <> []

let comm_latency t ~src ~dst = Topology.comm_latency t.topology ~src ~dst
let hops t a b = Topology.hops t.topology a b

let is_mesh t =
  match t.topology with Topology.Mesh _ -> true | Topology.Crossbar _ -> false

let validate_region t region =
  let graph = region.Cs_ddg.Region.graph in
  let problems = ref [] in
  Array.iter
    (fun ins ->
      (match ins.Cs_ddg.Instr.preplace with
      | Some c when c < 0 || c >= t.n_clusters ->
        problems :=
          Printf.sprintf "instr %d preplaced on cluster %d (machine has %d)"
            ins.Cs_ddg.Instr.id c t.n_clusters
          :: !problems
      | Some _ | None -> ());
      let executable =
        let rec any c = c < t.n_clusters && (can_execute t ~cluster:c ins.Cs_ddg.Instr.op || any (c + 1)) in
        any 0
      in
      if not executable then
        problems :=
          Printf.sprintf "opcode %s of instr %d not executable anywhere"
            (Cs_ddg.Opcode.to_string ins.Cs_ddg.Instr.op)
            ins.Cs_ddg.Instr.id
          :: !problems)
    (Cs_ddg.Graph.instrs graph);
  Cs_ddg.Reg.Map.iter
    (fun r c ->
      if c < 0 || c >= t.n_clusters then
        problems :=
          Printf.sprintf "live-in %s homed on cluster %d (machine has %d)"
            (Cs_ddg.Reg.to_string r) c t.n_clusters
          :: !problems)
    region.Cs_ddg.Region.live_in_homes;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

let pp fmt t =
  Format.fprintf fmt "%s: %d clusters x %d FUs, %a" t.name t.n_clusters (issue_width t)
    Topology.pp t.topology
