(** Per-cluster linear-scan register allocation over the live intervals
    of a schedule (the paper runs a traditional single-cluster register
    allocator after space-time scheduling; this is our stand-in, used to
    report spill behaviour in the benches). *)

type result = {
  spills_per_cluster : int array;
  total_spills : int;
  spill_penalty_cycles : int;
  (** estimated extra cycles: one store + one reload per spilled value *)
}

val run : ?registers:int -> Cs_sched.Schedule.t -> result
(** Default 32 registers per cluster (the R4000 register file). Spills
    pick the interval with the furthest death (Poletto-Sarkar). *)
