(** Register-pressure analysis of a finished schedule. A value lives on
    its producer's cluster from the producer's finish until its last
    local use or outgoing transfer departure; a transferred copy lives on
    the destination cluster from arrival until its last use there. *)

type interval = {
  producer : int; (** defining instruction *)
  cluster : int;
  birth : int;
  death : int; (** inclusive; [death >= birth] *)
}

val intervals : Cs_sched.Schedule.t -> interval list

val peak : Cs_sched.Schedule.t -> int array
(** Maximum number of simultaneously live values per cluster. *)

val max_peak : Cs_sched.Schedule.t -> int
