type interval = {
  producer : int;
  cluster : int;
  birth : int;
  death : int;
}

let intervals sched =
  let graph = sched.Cs_sched.Schedule.graph in
  let entries = sched.Cs_sched.Schedule.entries in
  let acc = ref [] in
  for p = 0 to Cs_ddg.Graph.n graph - 1 do
    let ins = Cs_ddg.Graph.instr graph p in
    if ins.Cs_ddg.Instr.dst <> None then begin
      let ep = entries.(p) in
      let home_death = ref ep.Cs_sched.Schedule.finish in
      let remote_uses = Hashtbl.create 4 in
      List.iter
        (fun s ->
          let es = entries.(s) in
          if es.Cs_sched.Schedule.cluster = ep.Cs_sched.Schedule.cluster then
            home_death := max !home_death es.Cs_sched.Schedule.start
          else begin
            let c = es.Cs_sched.Schedule.cluster in
            let prev = Option.value ~default:0 (Hashtbl.find_opt remote_uses c) in
            Hashtbl.replace remote_uses c (max prev es.Cs_sched.Schedule.start)
          end)
        (Cs_ddg.Graph.succs graph p);
      (* Outgoing transfers keep the value alive at home until departure,
         and create a copy interval at the destination. *)
      List.iter
        (fun (cm : Cs_sched.Schedule.comm) ->
          if cm.producer = p then begin
            home_death := max !home_death cm.depart;
            let last_use =
              Option.value ~default:cm.arrive (Hashtbl.find_opt remote_uses cm.dst)
            in
            acc :=
              { producer = p; cluster = cm.dst; birth = cm.arrive;
                death = max cm.arrive last_use }
              :: !acc
          end)
        sched.Cs_sched.Schedule.comms;
      acc :=
        { producer = p; cluster = ep.Cs_sched.Schedule.cluster;
          birth = ep.Cs_sched.Schedule.finish; death = !home_death }
        :: !acc
    end
  done;
  !acc

let peak sched =
  let nc = Cs_machine.Machine.n_clusters sched.Cs_sched.Schedule.machine in
  let horizon = Cs_sched.Schedule.makespan sched + 1 in
  let live = Array.make_matrix nc (horizon + 1) 0 in
  List.iter
    (fun iv ->
      for t = iv.birth to min iv.death horizon do
        live.(iv.cluster).(t) <- live.(iv.cluster).(t) + 1
      done)
    (intervals sched);
  Array.map (fun row -> Array.fold_left max 0 row) live

let max_peak sched = Array.fold_left max 0 (peak sched)
