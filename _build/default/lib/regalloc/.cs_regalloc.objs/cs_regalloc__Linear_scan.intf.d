lib/regalloc/linear_scan.mli: Cs_sched
