lib/regalloc/pressure.mli: Cs_sched
