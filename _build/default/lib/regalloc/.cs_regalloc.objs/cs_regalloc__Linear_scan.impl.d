lib/regalloc/linear_scan.ml: Array Cs_ddg Cs_machine Cs_sched Int List Pressure
