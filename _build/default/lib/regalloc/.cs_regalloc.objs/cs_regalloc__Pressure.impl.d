lib/regalloc/pressure.ml: Array Cs_ddg Cs_machine Cs_sched Hashtbl List Option
