type result = {
  spills_per_cluster : int array;
  total_spills : int;
  spill_penalty_cycles : int;
}

let allocate_cluster ~registers intervals =
  (* Standard linear scan: sweep by increasing birth; active set sorted by
     death; spill the furthest death on overflow. *)
  let sorted =
    List.sort
      (fun (a : Pressure.interval) b -> Int.compare a.birth b.birth)
      intervals
  in
  let active = ref [] (* deaths, descending *) in
  let spills = ref 0 in
  List.iter
    (fun (iv : Pressure.interval) ->
      active := List.filter (fun death -> death >= iv.birth) !active;
      if List.length !active < registers then
        active := List.sort (fun a b -> Int.compare b a) (iv.death :: !active)
      else begin
        match !active with
        | furthest :: rest when furthest > iv.death ->
          incr spills;
          active := List.sort (fun a b -> Int.compare b a) (iv.death :: rest)
        | _ -> incr spills
      end)
    sorted;
  !spills

let run ?(registers = 32) sched =
  let machine = sched.Cs_sched.Schedule.machine in
  let nc = Cs_machine.Machine.n_clusters machine in
  let per_cluster = Array.make nc [] in
  List.iter
    (fun (iv : Pressure.interval) -> per_cluster.(iv.cluster) <- iv :: per_cluster.(iv.cluster))
    (Pressure.intervals sched);
  let spills_per_cluster = Array.map (allocate_cluster ~registers) per_cluster in
  let total_spills = Array.fold_left ( + ) 0 spills_per_cluster in
  let store_lat = machine.Cs_machine.Machine.latency Cs_ddg.Opcode.Store in
  let load_lat = machine.Cs_machine.Machine.latency Cs_ddg.Opcode.Load in
  { spills_per_cluster; total_spills;
    spill_penalty_cycles = total_spills * (store_lat + load_lat) }
