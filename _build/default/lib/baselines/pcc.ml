(* On machines with remote memory access (clustered VLIW), the paper's
   PCC augmentation treats preplacement through the *estimator* — "by
   modeling the extra costs incurred ... for a non-local memory access" —
   rather than by pinning. Pinning remains mandatory on meshes, where a
   preplaced instruction cannot legally run elsewhere. *)
let pins_are_hard machine = machine.Cs_machine.Machine.remote_mem_penalty = 0

let pin_of ~machine graph i =
  if pins_are_hard machine then (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.preplace
  else None

let components ~machine ~theta region =
  let graph = region.Cs_ddg.Region.graph in
  let analysis = Estimator.analysis_for ~machine region in
  let n = Cs_ddg.Graph.n graph in
  let visited = Array.make n false in
  (* Seeds in decreasing criticality: smallest slack first, deepest
     remaining chain breaking ties — "bottom up, critical-path first". *)
  let seeds =
    List.sort
      (fun a b ->
        let c = Int.compare (Cs_ddg.Analysis.slack analysis a) (Cs_ddg.Analysis.slack analysis b) in
        if c <> 0 then c
        else
          let c =
            Int.compare (Cs_ddg.Analysis.height analysis b) (Cs_ddg.Analysis.height analysis a)
          in
          if c <> 0 then c else Int.compare a b)
      (List.init n (fun i -> i))
  in
  let comps = ref [] in
  List.iter
    (fun seed ->
      if not visited.(seed) then begin
        visited.(seed) <- true;
        let comp = ref [ seed ] in
        let comp_pin = ref (pin_of ~machine graph seed) in
        let size = ref 1 in
        let compatible i =
          match (!comp_pin, pin_of ~machine graph i) with
          | Some a, Some b -> a = b
          | _ -> true
        in
        let continue_growing = ref true in
        while !size < theta && !continue_growing do
          (* Frontier: unvisited, pin-compatible neighbors of the component. *)
          let frontier =
            List.concat_map (fun i -> Cs_ddg.Graph.neighbors graph i) !comp
            |> List.filter (fun i -> (not visited.(i)) && compatible i)
            |> List.sort_uniq Int.compare
          in
          let best =
            List.fold_left
              (fun acc i ->
                let key =
                  (Cs_ddg.Analysis.slack analysis i, -Cs_ddg.Analysis.height analysis i, i)
                in
                match acc with
                | Some (bk, _) when bk <= key -> acc
                | Some _ | None -> Some (key, i))
              None frontier
          in
          match best with
          | None -> continue_growing := false
          | Some (_, i) ->
            visited.(i) <- true;
            comp := i :: !comp;
            incr size;
            (match (!comp_pin, pin_of ~machine graph i) with
            | None, Some c -> comp_pin := Some c
            | _ -> ())
        done;
        comps := List.rev !comp :: !comps
      end)
    seeds;
  List.rev !comps

let initial_assignment ~machine ~analysis graph comps =
  let nc = Cs_machine.Machine.n_clusters machine in
  let n = Cs_ddg.Graph.n graph in
  let assignment = Array.make n 0 in
  let load = Array.make nc 0 in
  let work comp =
    List.fold_left (fun acc i -> acc + Cs_ddg.Analysis.latency analysis i) 0 comp
  in
  let sorted = List.sort (fun a b -> Int.compare (work b) (work a)) comps in
  List.iter
    (fun comp ->
      let pin = List.find_map (pin_of ~machine graph) comp in
      let c =
        match pin with
        | Some c -> c
        | None ->
          let best = ref 0 in
          for cand = 1 to nc - 1 do
            if load.(cand) < load.(!best) then best := cand
          done;
          !best
      in
      List.iter (fun i -> assignment.(i) <- c) comp;
      load.(c) <- load.(c) + work comp)
    sorted;
  assignment

(* Iterative descent over the *approximate* estimator (as in Desoli's
   original: candidate moves are judged by an estimation of the schedule
   length, never by scheduling). The estimate's blind spots — uniform
   unit binding, no issue-slot contention — are why PCC's final
   schedules trail UAS and convergent scheduling even after many
   evaluations. *)
let descent ~machine ~analysis ~max_rounds region comps assignment =
  let nc = Cs_machine.Machine.n_clusters machine in
  let graph = region.Cs_ddg.Region.graph in
  let movable = List.filter (fun comp -> List.for_all (fun i -> pin_of ~machine graph i = None) comp) comps in
  let best_len = ref (Estimator.approximate_length ~machine ~assignment ~analysis region) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    List.iter
      (fun comp ->
        for c = 0 to nc - 1 do
          if c <> assignment.(List.hd comp) then begin
            let saved = List.map (fun i -> assignment.(i)) comp in
            let len =
              List.iter (fun i -> assignment.(i) <- c) comp;
              Estimator.approximate_length ~machine ~assignment ~analysis region
            in
            if len < !best_len then begin
              best_len := len;
              improved := true
            end
            else
              List.iter2 (fun i old -> assignment.(i) <- old) comp saved
          end
        done)
      movable
  done;
  assignment

let assign ?(theta = 4) ?(max_rounds = 10) ~machine region =
  let graph = region.Cs_ddg.Region.graph in
  let analysis = Estimator.analysis_for ~machine region in
  let comps = components ~machine ~theta region in
  let assignment = initial_assignment ~machine ~analysis graph comps in
  descent ~machine ~analysis ~max_rounds region comps assignment

let schedule ?theta ?max_rounds ~machine region =
  let analysis = Estimator.analysis_for ~machine region in
  let assignment = assign ?theta ?max_rounds ~machine region in
  let priority = Cs_sched.Priority.alap analysis in
  Cs_sched.List_scheduler.run ~machine ~assignment ~priority ~analysis region
