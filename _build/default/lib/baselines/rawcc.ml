(* Step 1: DSC-style clustering. Walk in topological order; merge each
   instruction with the predecessor that determines its ASAP time (its
   critical edge) — eliminating the communication that would otherwise
   lengthen the critical path — unless the merge would join two groups
   pinned to different home clusters. *)
let clustering ~analysis graph =
  let n = Cs_ddg.Graph.n graph in
  let uf = Cs_util.Union_find.create n in
  let pin = Array.make n None in
  Array.iter
    (fun ins ->
      match ins.Cs_ddg.Instr.preplace with
      | Some c -> pin.(ins.Cs_ddg.Instr.id) <- Some c
      | None -> ())
    (Cs_ddg.Graph.instrs graph);
  let pin_of i = pin.(Cs_util.Union_find.find uf i) in
  let merge a b =
    let pa = pin_of a and pb = pin_of b in
    match (pa, pb) with
    | Some ca, Some cb when ca <> cb -> ()
    | _ ->
      let keep = match (pa, pb) with Some c, _ | _, Some c -> Some c | None, None -> None in
      let root = Cs_util.Union_find.union uf a b in
      pin.(root) <- keep
  in
  Array.iter
    (fun i ->
      let critical_pred =
        List.fold_left
          (fun acc p ->
            let arrives = Cs_ddg.Analysis.earliest analysis p + Cs_ddg.Analysis.latency analysis p in
            if arrives = Cs_ddg.Analysis.earliest analysis i then
              match acc with
              | Some q
                when Cs_ddg.Analysis.height analysis q >= Cs_ddg.Analysis.height analysis p ->
                acc
              | Some _ | None -> Some p
            else acc)
          None (Cs_ddg.Graph.preds graph i)
      in
      match critical_pred with Some p -> merge p i | None -> ())
    (Cs_ddg.Graph.topo_order graph);
  (uf, pin_of)

(* Steps 2+3: merge groups into one partition per cluster and place them.
   Pinned groups go to their home cluster; the rest are packed in
   decreasing-work order onto the cluster maximizing dependence affinity
   (discounted by network hops) minus a load penalty. *)
let pack ~machine ~analysis graph (uf, pin_of) =
  let n = Cs_ddg.Graph.n graph in
  let nc = Cs_machine.Machine.n_clusters machine in
  let assignment = Array.make n (-1) in
  let load = Array.make nc 0 in
  let groups = Cs_util.Union_find.groups uf in
  let work members =
    List.fold_left (fun acc i -> acc + Cs_ddg.Analysis.latency analysis i) 0 members
  in
  let place members c =
    List.iter (fun i -> assignment.(i) <- c) members;
    load.(c) <- load.(c) + work members
  in
  let unpinned = ref [] in
  Hashtbl.iter
    (fun root members ->
      match pin_of root with
      | Some c -> place members c
      | None -> unpinned := (work members, members) :: !unpinned)
    groups;
  let unpinned =
    List.sort (fun (wa, ma) (wb, mb) -> if wb <> wa then Int.compare wb wa else compare ma mb)
      !unpinned
  in
  List.iter
    (fun (w, members) ->
      let affinity = Array.make nc 0.0 in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if assignment.(j) >= 0 then begin
                let c = assignment.(j) in
                for cand = 0 to nc - 1 do
                  let hops = Cs_machine.Machine.hops machine cand c in
                  affinity.(cand) <- affinity.(cand) +. (1.0 /. float_of_int (1 + hops))
                done
              end)
            (Cs_ddg.Graph.neighbors graph i))
        members;
      let best = ref 0 and best_score = ref neg_infinity in
      for c = 0 to nc - 1 do
        let score = (2.0 *. affinity.(c)) -. float_of_int (load.(c) + w) in
        if score > !best_score then begin
          best := c;
          best_score := score
        end
      done;
      place members !best)
    unpinned;
  assignment

(* Pairwise-swap refinement on mesh machines: swapping the unpinned
   contents of two tiles keeps preplacement legal and can reduce
   hop-weighted communication. *)
let refine ~machine graph assignment =
  let nc = Cs_machine.Machine.n_clusters machine in
  let comm_cost assignment =
    let total = ref 0 in
    for i = 0 to Cs_ddg.Graph.n graph - 1 do
      List.iter
        (fun j ->
          total := !total + Cs_machine.Machine.hops machine assignment.(i) assignment.(j))
        (Cs_ddg.Graph.succs graph i)
    done;
    !total
  in
  let pinned = Array.make (Cs_ddg.Graph.n graph) false in
  Array.iter
    (fun ins ->
      if Cs_ddg.Instr.is_preplaced ins then pinned.(ins.Cs_ddg.Instr.id) <- true)
    (Cs_ddg.Graph.instrs graph);
  let swap a b =
    Array.mapi
      (fun i c ->
        if pinned.(i) then c else if c = a then b else if c = b then a else c)
      assignment
  in
  let best = ref (Array.copy assignment) in
  let best_cost = ref (comm_cost assignment) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 4 do
    improved := false;
    incr rounds;
    for a = 0 to nc - 1 do
      for b = a + 1 to nc - 1 do
        let cand = swap a b in
        let cost = comm_cost cand in
        if cost < !best_cost then begin
          best := cand;
          best_cost := cost;
          Array.blit cand 0 assignment 0 (Array.length assignment);
          improved := true
        end
      done
    done
  done;
  !best

let assign ~machine region =
  let graph = region.Cs_ddg.Region.graph in
  let analysis = Estimator.analysis_for ~machine region in
  let clusters = clustering ~analysis graph in
  let assignment = pack ~machine ~analysis graph clusters in
  if Cs_machine.Machine.is_mesh machine then refine ~machine graph assignment
  else assignment

let schedule ~machine region =
  let analysis = Estimator.analysis_for ~machine region in
  let assignment = assign ~machine region in
  let priority = Cs_sched.Priority.alap analysis in
  Cs_sched.List_scheduler.run ~machine ~assignment ~priority ~analysis region
