(** Schedule-length estimation for assignment algorithms that iterate
    (PCC's descent step evaluates candidate moves by estimating the
    resulting schedule; Desoli's estimator models communication and
    resource costs — ours simply runs the real list scheduler, which has
    the same asymptotic cost profile and is exact). *)

val schedule_length :
  machine:Cs_machine.Machine.t ->
  assignment:int array ->
  ?analysis:Cs_ddg.Analysis.t ->
  Cs_ddg.Region.t ->
  int
(** Makespan of an ALAP-priority list schedule under the assignment —
    exact, but costs a full scheduling run. *)

val approximate_length :
  machine:Cs_machine.Machine.t ->
  assignment:int array ->
  ?analysis:Cs_ddg.Analysis.t ->
  Cs_ddg.Region.t ->
  int
(** Desoli-style closed-form estimate: the maximum of (a) the
    communication-aware critical path (each cross-cluster dependence
    pays the topology's latency) and (b) each cluster's resource bound
    (operations per functional-unit class, plus outgoing transfers per
    transfer unit). Cheap — O(V + E) — and deliberately inexact; this is
    what the PCC baseline descends on, and its inaccuracy is part of why
    PCC trails convergent scheduling in the paper's Fig. 8. *)

val analysis_for : machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> Cs_ddg.Analysis.t
