let movable ~machine graph i =
  match (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.preplace with
  | Some _ -> machine.Cs_machine.Machine.remote_mem_penalty > 0
  | None -> true

let initial ~machine ~rng graph =
  let nc = Cs_machine.Machine.n_clusters machine in
  Array.init (Cs_ddg.Graph.n graph) (fun i ->
      match (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.preplace with
      | Some home when machine.Cs_machine.Machine.remote_mem_penalty = 0 -> home
      | Some home -> home
      | None -> Cs_util.Rng.int rng nc)

let assign ?(seed = 99) ?(initial_temperature = 4.0) ?(cooling = 0.9)
    ?(steps_per_level = 40) ~machine region =
  let graph = region.Cs_ddg.Region.graph in
  let n = Cs_ddg.Graph.n graph in
  let nc = Cs_machine.Machine.n_clusters machine in
  let rng = Cs_util.Rng.create seed in
  let analysis = Estimator.analysis_for ~machine region in
  let assignment = initial ~machine ~rng graph in
  if n = 0 || nc < 2 then assignment
  else begin
    let cost () = Estimator.approximate_length ~machine ~assignment ~analysis region in
    let current = ref (cost ()) in
    let best = Array.copy assignment in
    let best_cost = ref !current in
    let temperature = ref initial_temperature in
    while !temperature > 0.05 do
      for _ = 1 to steps_per_level do
        let i = Cs_util.Rng.int rng n in
        if movable ~machine graph i then begin
          let old_cluster = assignment.(i) in
          let candidate = Cs_util.Rng.int rng nc in
          if candidate <> old_cluster
             && Cs_machine.Machine.can_execute machine ~cluster:candidate
                  (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.op
          then begin
            assignment.(i) <- candidate;
            let next = cost () in
            let delta = float_of_int (next - !current) in
            let accept =
              delta <= 0.0 || Cs_util.Rng.float rng 1.0 < exp (-.delta /. !temperature)
            in
            if accept then begin
              current := next;
              if next < !best_cost then begin
                best_cost := next;
                Array.blit assignment 0 best 0 n
              end
            end
            else assignment.(i) <- old_cluster
          end
        end
      done;
      temperature := !temperature *. cooling
    done;
    best
  end

let schedule ?seed ~machine region =
  let analysis = Estimator.analysis_for ~machine region in
  let assignment = assign ?seed ~machine region in
  let priority = Cs_sched.Priority.alap analysis in
  Cs_sched.List_scheduler.run ~machine ~assignment ~priority ~analysis region
