let analysis_for ~machine region =
  Cs_ddg.Analysis.make
    ~latency:(Cs_machine.Machine.latency_of machine)
    region.Cs_ddg.Region.graph

let schedule_length ~machine ~assignment ?analysis region =
  let analysis = match analysis with Some a -> a | None -> analysis_for ~machine region in
  let priority = Cs_sched.Priority.alap analysis in
  let sched = Cs_sched.List_scheduler.run ~machine ~assignment ~priority ~analysis region in
  Cs_sched.Schedule.makespan sched

let approximate_length ~machine ~assignment ?analysis region =
  let graph = region.Cs_ddg.Region.graph in
  let analysis = match analysis with Some a -> a | None -> analysis_for ~machine region in
  let n = Cs_ddg.Graph.n graph in
  let nc = Cs_machine.Machine.n_clusters machine in
  (* Resource bound at cluster granularity: operations on a cluster over
     its issue width, plus one cycle per distinct outgoing transfer.
     Deliberately blind to functional-unit classes — a cluster-level
     count cannot see that, e.g., all floating-point work funnels
     through one FPU, which is the estimator inaccuracy the baseline is
     known for. *)
  let width = Cs_machine.Machine.issue_width machine in
  let ops = Array.make nc 0 in
  let transfers = Array.make nc 0 in
  for i = 0 to n - 1 do
    let c = assignment.(i) in
    ops.(c) <- ops.(c) + 1;
    let sends_to = Array.make nc false in
    List.iter
      (fun s -> if assignment.(s) <> c then sends_to.(assignment.(s)) <- true)
      (Cs_ddg.Graph.succs graph i);
    Array.iter (fun b -> if b then transfers.(c) <- transfers.(c) + 1) sends_to
  done;
  let resource_bound = ref 0 in
  for c = 0 to nc - 1 do
    resource_bound := max !resource_bound ((ops.(c) + transfers.(c) + width - 1) / width)
  done;
  (* Communication-aware critical path; effective latencies include the
     remote-memory penalty, which is how the paper's PCC augmentation
     accounts for preplacement on the clustered VLIW. (The [analysis]
     parameter exists for signature parity with [schedule_length]; this
     bound recomputes its own finish times under the assignment.) *)
  ignore analysis;
  let finish = Array.make n 0 in
  let cp_bound = ref 0 in
  Array.iter
    (fun i ->
      let start =
        List.fold_left
          (fun acc p ->
            let comm =
              Cs_machine.Machine.comm_latency machine ~src:assignment.(p) ~dst:assignment.(i)
            in
            max acc (finish.(p) + comm))
          0 (Cs_ddg.Graph.preds graph i)
      in
      let lat =
        Cs_sched.List_scheduler.effective_latency ~machine ~cluster:assignment.(i)
          (Cs_ddg.Graph.instr graph i)
      in
      finish.(i) <- start + lat;
      cp_bound := max !cp_bound finish.(i))
    (Cs_ddg.Graph.topo_order graph);
  max !resource_bound !cp_bound
