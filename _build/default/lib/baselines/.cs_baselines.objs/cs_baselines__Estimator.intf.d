lib/baselines/estimator.mli: Cs_ddg Cs_machine
