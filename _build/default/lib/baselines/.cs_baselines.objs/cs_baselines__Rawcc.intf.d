lib/baselines/rawcc.mli: Cs_ddg Cs_machine Cs_sched
