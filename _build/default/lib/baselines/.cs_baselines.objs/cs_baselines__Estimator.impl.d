lib/baselines/estimator.ml: Array Cs_ddg Cs_machine Cs_sched List
