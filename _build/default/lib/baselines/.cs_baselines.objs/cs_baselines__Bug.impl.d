lib/baselines/bug.ml: Array Cs_ddg Cs_machine Cs_sched Estimator Int List Printf
