lib/baselines/anneal.mli: Cs_ddg Cs_machine Cs_sched
