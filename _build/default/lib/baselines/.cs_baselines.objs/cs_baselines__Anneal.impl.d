lib/baselines/anneal.ml: Array Cs_ddg Cs_machine Cs_sched Cs_util Estimator
