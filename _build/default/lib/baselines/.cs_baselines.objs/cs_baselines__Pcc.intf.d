lib/baselines/pcc.mli: Cs_ddg Cs_machine Cs_sched
