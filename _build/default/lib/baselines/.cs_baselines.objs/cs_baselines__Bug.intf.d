lib/baselines/bug.mli: Cs_ddg Cs_machine Cs_sched
