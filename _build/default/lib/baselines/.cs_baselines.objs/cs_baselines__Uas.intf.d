lib/baselines/uas.mli: Cs_ddg Cs_machine Cs_sched
