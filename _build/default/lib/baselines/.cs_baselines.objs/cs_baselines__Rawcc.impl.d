lib/baselines/rawcc.ml: Array Cs_ddg Cs_machine Cs_sched Cs_util Estimator Hashtbl Int List
