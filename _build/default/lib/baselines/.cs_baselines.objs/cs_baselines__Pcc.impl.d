lib/baselines/pcc.ml: Array Cs_ddg Cs_machine Cs_sched Estimator Int List
