(** The Rawcc-style space-time scheduler baseline (Lee et al.,
    ASPLOS'98; summarized in the paper's Secs. 5-6): assignment in three
    steps — {e clustering} groups instructions with little mutual
    parallelism (we merge along critical dependence edges, DSC-style);
    {e merging} reduces the clusters to the number of tiles by affinity-
    and load-aware bin packing; {e placement} maps partitions to tiles
    honoring preplacement and greedily minimizing hop-weighted
    communication with pairwise-swap refinement. Temporal scheduling is
    the shared ALAP list scheduler. *)

val assign : machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> int array

val schedule : machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> Cs_sched.Schedule.t
