(** PCC — Partial Component Clustering (Desoli, HPL-98-13; the second
    baseline of the paper's Fig. 8): build partial components of the
    dependence graph bottom-up, critical-path first, capped at
    [theta] nodes; assign components to clusters by load balancing
    (preplaced components go home, per the paper's augmentation); then
    improve by iterative descent, re-estimating the schedule length for
    every candidate component move. The descent's repeated estimation is
    what makes PCC orders of magnitude slower than UAS or convergent
    scheduling (paper Fig. 10). *)

val components : machine:Cs_machine.Machine.t -> theta:int -> Cs_ddg.Region.t -> int list list
(** The partial components (each a list of instruction ids); exposed for
    tests. Components never mix instructions preplaced on different
    clusters. *)

val assign :
  ?theta:int -> ?max_rounds:int -> machine:Cs_machine.Machine.t -> Cs_ddg.Region.t ->
  int array
(** Default [theta] 4, [max_rounds] 10 descent sweeps over the approximate estimator. *)

val schedule :
  ?theta:int -> ?max_rounds:int -> machine:Cs_machine.Machine.t -> Cs_ddg.Region.t ->
  Cs_sched.Schedule.t
