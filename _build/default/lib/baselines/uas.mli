(** UAS — Unified Assign and Schedule (Ozer et al., MICRO-31; used as a
    baseline in the paper's Fig. 8): cluster assignment is integrated
    into the list scheduler, with each decision made once and never
    revisited.

    Ready instructions are taken in critical-path order; for each, the
    candidate clusters are ranked and the first feasible one is taken,
    booking functional units and operand transfers immediately. Per the
    paper's augmentation, the home cluster of a preplaced instruction
    gets the highest priority (and is mandatory on Raw, where memory
    banks are not remotely accessible); other clusters are ranked by
    estimated completion cycle (the CPSC flavor), breaking ties toward
    lower load. *)

val schedule : machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> Cs_sched.Schedule.t

val assign : machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> int array
(** The assignment extracted from {!schedule}'s result. *)
