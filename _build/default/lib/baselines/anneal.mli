(** Simulated-annealing assignment (Leupers, PACT 2000 — the paper's
    related work cites it as the iterative combined partitioning/
    scheduling approach for clustered VLIW DSPs). Starts from a
    load-balanced random assignment and anneals single-instruction moves
    under the approximate schedule-length estimator, with the real list
    scheduler run once at the end. A fifth baseline for the comparison
    benches; deterministic for a given seed. *)

val assign :
  ?seed:int -> ?initial_temperature:float -> ?cooling:float -> ?steps_per_level:int ->
  machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> int array
(** Defaults: temperature 4.0, cooling 0.9, 40 moves per level, floor
    0.05. Preplaced instructions never move on machines without remote
    memory access. *)

val schedule :
  ?seed:int -> machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> Cs_sched.Schedule.t
