(** BUG — the Bulldog assigner (Ellis, 1986; the pioneering cluster
    assignment algorithm discussed in the paper's related work). Two
    phases: a bottom-up traversal propagates preplacement desires from
    anchored descendants; a top-down greedy traversal then maps each
    instruction to the cluster that lets it complete earliest, breaking
    ties toward the inherited desire and the lighter load. Included as
    an extra baseline for the ablation benches. *)

val assign : machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> int array

val schedule : machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> Cs_sched.Schedule.t
