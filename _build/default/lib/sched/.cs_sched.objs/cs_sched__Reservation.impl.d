lib/sched/reservation.ml: Bytes List
