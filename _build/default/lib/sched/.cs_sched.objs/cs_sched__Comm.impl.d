lib/sched/comm.ml: Array Cs_machine Hashtbl List Option Printf Reservation Schedule
