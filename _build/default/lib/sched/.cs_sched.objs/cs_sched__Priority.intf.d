lib/sched/priority.mli: Cs_ddg
