lib/sched/schedule.ml: Array Cs_ddg Cs_machine Format Int List
