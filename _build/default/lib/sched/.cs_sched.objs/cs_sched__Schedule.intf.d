lib/sched/schedule.mli: Cs_ddg Cs_machine Format
