lib/sched/validator.mli: Schedule
