lib/sched/priority.ml: Array Cs_ddg Int
