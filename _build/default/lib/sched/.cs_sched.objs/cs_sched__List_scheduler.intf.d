lib/sched/list_scheduler.mli: Cs_ddg Cs_machine Schedule
