lib/sched/list_scheduler.ml: Array Comm Cs_ddg Cs_machine Cs_util List Printf Priority Reservation Schedule
