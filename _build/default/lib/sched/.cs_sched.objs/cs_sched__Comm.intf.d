lib/sched/comm.mli: Cs_machine Schedule
