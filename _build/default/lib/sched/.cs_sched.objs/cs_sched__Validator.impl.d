lib/sched/validator.ml: Array Comm Cs_ddg Cs_machine Hashtbl List List_scheduler Printf Schedule String
