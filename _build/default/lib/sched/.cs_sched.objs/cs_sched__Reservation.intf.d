lib/sched/reservation.mli:
