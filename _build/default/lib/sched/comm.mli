(** Communication synthesis during scheduling.

    On the clustered VLIW, moving a value books the source cluster's
    transfer unit(s) for one cycle and arrives [crossbar latency] cycles
    later. On Raw, the value is routed over the static network:
    a dimension-ordered route whose directed links are reserved
    wormhole-style (link k of the route is busy at cycle [depart + k]),
    arriving after 3 + (hops - 1) cycles.

    Deliveries are memoized per (producer, destination cluster): a value
    already sent to a cluster is reused, matching what a real
    compiler-routed network does. *)

type t

val create : Cs_machine.Machine.t -> t

val deliver : t -> producer:int -> src:int -> dst:int -> ready:int -> int
(** [deliver t ~producer ~src ~dst ~ready] books the earliest legal
    transfer departing at or after [ready] and returns the arrival
    cycle. Returns [ready] when [src = dst]. *)

val deliver_by :
  t -> producer:int -> src:int -> dst:int -> ready:int -> deadline:int -> int option
(** Like {!deliver} but only commits the booking when the value can
    arrive at or before [deadline]; otherwise books nothing and returns
    [None]. Used by the cycle-driven UAS baseline, which must know
    whether an operand can reach a cluster *this* cycle. *)

val bookings : t -> Schedule.comm list
(** Every transfer booked so far. *)

val link_conflicts : Cs_machine.Machine.t -> Schedule.comm list -> string list
(** Re-checks a finished schedule's transfers for oversubscribed
    resources (validator helper): transfer-unit overuse on a crossbar,
    link collisions on a mesh. *)
