let of_slots slots = Array.copy slots

let alap a =
  Array.init (Cs_ddg.Graph.n (Cs_ddg.Analysis.graph a)) (fun i -> Cs_ddg.Analysis.latest a i)

let asap a =
  Array.init (Cs_ddg.Graph.n (Cs_ddg.Analysis.graph a)) (fun i -> Cs_ddg.Analysis.earliest a i)

let compare_with_tiebreak ~priority ~height i j =
  let c = Int.compare priority.(i) priority.(j) in
  if c <> 0 then c
  else
    let c = Int.compare (height j) (height i) in
    if c <> 0 then c else Int.compare i j
