(** Independent re-verification of finished schedules. Every schedule
    produced in tests and benches — by the convergent scheduler and by
    every baseline — passes through this module, so reported cycle
    counts are backed by checked resource and dependence legality. *)

val check : Schedule.t -> (unit, string list) result
(** Verifies:
    - every instruction has a legal entry (cluster in range, functional
      unit compatible, non-negative start, finish consistent with the
      machine's effective latency);
    - preplaced instructions run on their home cluster, except on
      machines with remote memory access where memory operations may run
      remotely (and then must carry the penalty);
    - no two instructions issue on the same (cluster, unit, cycle);
    - every dependence is satisfied: same-cluster consumers start no
      earlier than the producer's finish; cross-cluster consumers are fed
      by a recorded transfer with consistent endpoints, departure after
      the producer's finish, latency matching the topology, and arrival
      no later than the consumer's start;
    - transfers do not oversubscribe transfer units or mesh links. *)

val check_exn : Schedule.t -> unit
(** Raises [Failure] with all problems joined when the check fails. *)
