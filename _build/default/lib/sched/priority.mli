(** Priority vectors for list scheduling: lower value = scheduled
    earlier among ready instructions. *)

val of_slots : int array -> int array
(** Use the convergent scheduler's preferred time slots directly (the
    paper: "the preferred time is used as the instruction priority for
    list scheduling"). *)

val alap : Cs_ddg.Analysis.t -> int array
(** Classic critical-path priority: latest feasible start time; critical
    instructions first. *)

val asap : Cs_ddg.Analysis.t -> int array

val compare_with_tiebreak :
  priority:int array -> height:(int -> int) -> int -> int -> int
(** Order by priority, then by greater height (longer remaining chain
    first), then by id — the deterministic ready-queue ordering shared
    by all schedulers in this repository. *)
