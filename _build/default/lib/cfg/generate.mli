(** Random structured acyclic CFGs for region-formation experiments:
    a chain of segments, each either a straight block or a two-arm
    diamond with a skewed branch, carrying dataflow through a small set
    of program variables. Deterministic per seed. *)

val acyclic :
  ?segments:int -> ?instrs_per_block:int -> ?variables:int -> ?hot_probability:float ->
  ?mem_fraction:float -> ?banks:int -> seed:int -> unit -> Cfg.t
(** Defaults: 6 segments, 6 instructions per block, 8 variables, 0.85
    hot-arm probability, 0.25 of instructions are banked memory
    references over [banks] (default 4) clusters. *)
