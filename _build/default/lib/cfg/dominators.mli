(** Dominator analysis and natural-loop detection over a CFG — the
    standard infrastructure behind region formation (identifying loop
    bodies to exclude from hyperblocks, join points for if-conversion,
    back edges for frequency estimation). Iterative dataflow
    formulation (Cooper-Harvey-Kennedy style, over label sets). *)

val immediate_dominators : Cfg.t -> (string * string) list
(** [(block, idom)] for every block reachable from the entry except the
    entry itself. *)

val dominates : Cfg.t -> string -> string -> bool
(** [dominates cfg a b]: every path from the entry to [b] passes through
    [a]. Reflexive. Unreachable blocks are dominated by nothing. *)

val back_edges : Cfg.t -> (string * string) list
(** Edges [(tail, head)] where [head] dominates [tail] — the loop back
    edges. *)

val natural_loops : Cfg.t -> (string * string list) list
(** [(header, body)] per back edge; the body includes the header, sorted
    ascending. Loops sharing a header are merged. *)
