module StringSet = Set.Make (String)

let reachable cfg =
  let seen = Hashtbl.create 16 in
  let rec visit label =
    if not (Hashtbl.mem seen label) then begin
      Hashtbl.add seen label ();
      match Cfg.find_block cfg label with
      | Some b -> List.iter (fun (s, _) -> visit s) b.Cfg.succs
      | None -> ()
    end
  in
  visit cfg.Cfg.entry;
  seen

let predecessors cfg label =
  List.filter_map
    (fun b -> if List.mem_assoc label b.Cfg.succs then Some b.Cfg.label else None)
    cfg.Cfg.blocks

(* Iterative dominator sets: dom(entry) = {entry};
   dom(b) = {b} ∪ ⋂ dom(preds). *)
let dominator_sets cfg =
  let live = reachable cfg in
  let labels =
    List.filter_map
      (fun b -> if Hashtbl.mem live b.Cfg.label then Some b.Cfg.label else None)
      cfg.Cfg.blocks
  in
  let all = StringSet.of_list labels in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace dom l
        (if l = cfg.Cfg.entry then StringSet.singleton l else all))
    labels;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> cfg.Cfg.entry then begin
          let preds = List.filter (Hashtbl.mem live) (predecessors cfg l) in
          let inter =
            match preds with
            | [] -> StringSet.empty
            | p :: ps ->
              List.fold_left
                (fun acc q -> StringSet.inter acc (Hashtbl.find dom q))
                (Hashtbl.find dom p) ps
          in
          let next = StringSet.add l inter in
          if not (StringSet.equal next (Hashtbl.find dom l)) then begin
            Hashtbl.replace dom l next;
            changed := true
          end
        end)
      labels
  done;
  (labels, dom)

let dominates cfg a b =
  let _, dom = dominator_sets cfg in
  match Hashtbl.find_opt dom b with
  | Some set -> StringSet.mem a set
  | None -> false

let immediate_dominators cfg =
  let labels, dom = dominator_sets cfg in
  List.filter_map
    (fun l ->
      if l = cfg.Cfg.entry then None
      else begin
        let strict = StringSet.remove l (Hashtbl.find dom l) in
        (* The idom is the strict dominator dominated by all others. *)
        let idom =
          StringSet.fold
            (fun cand acc ->
              let dominated_by_all =
                StringSet.for_all
                  (fun other -> StringSet.mem other (Hashtbl.find dom cand))
                  strict
              in
              if dominated_by_all then Some cand else acc)
            strict None
        in
        Option.map (fun d -> (l, d)) idom
      end)
    labels

let back_edges cfg =
  let _, dom = dominator_sets cfg in
  List.concat_map
    (fun b ->
      List.filter_map
        (fun (s, _) ->
          match Hashtbl.find_opt dom b.Cfg.label with
          | Some set when StringSet.mem s set -> Some (b.Cfg.label, s)
          | Some _ | None -> None)
        b.Cfg.succs)
    cfg.Cfg.blocks

let natural_loops cfg =
  let loops = Hashtbl.create 8 in
  List.iter
    (fun (tail, head) ->
      (* Walk predecessors backward from the tail until the header. *)
      let body = ref (StringSet.of_list [ head; tail ]) in
      let rec walk label =
        List.iter
          (fun p ->
            if not (StringSet.mem p !body) then begin
              body := StringSet.add p !body;
              walk p
            end)
          (predecessors cfg label)
      in
      if tail <> head then walk tail;
      let existing =
        Option.value ~default:StringSet.empty (Hashtbl.find_opt loops head)
      in
      Hashtbl.replace loops head (StringSet.union existing !body))
    (back_edges cfg);
  Hashtbl.fold (fun head body acc -> (head, StringSet.elements body) :: acc) loops []
  |> List.sort compare
