(** Hyperblock formation by if-conversion (Mahlke et al., MICRO-25 —
    cited by the paper as one source of large scheduling units).

    A single-entry, acyclic CFG region is flattened into one scheduling
    region: every block's instructions are emitted unconditionally, a
    predicate (a synthesized compare) is created at each branching
    block, and variables that reach a join with different definitions
    are merged with [Select] instructions guarded by the controlling
    predicate — the predicated-execution model, specialized to our IR.

    Simplifications (documented, checked where possible): every variable
    merged at a join must be defined on all joining paths or before the
    branch (no partially-defined merges), and loops must be excluded
    from the region ([region_of] rejects back edges). *)

val region_of : Cfg.t -> entry:string -> Cs_ddg.Region.t
(** Flattens every block reachable from [entry]. Raises
    [Invalid_argument] on cycles, unknown labels, or partially-defined
    join merges. *)
