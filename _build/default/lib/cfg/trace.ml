let most_likely_succ cfg ~taken label =
  match Cfg.find_block cfg label with
  | None -> None
  | Some b ->
    List.fold_left
      (fun acc (s, p) ->
        if Hashtbl.mem taken s then acc
        else
          match acc with
          | Some (_, bp) when bp >= p -> acc
          | Some _ | None -> Some (s, p))
      None b.Cfg.succs

let most_likely_pred cfg ~taken label =
  List.fold_left
    (fun acc b ->
      if Hashtbl.mem taken b.Cfg.label then acc
      else
        match List.assoc_opt label b.Cfg.succs with
        | Some p ->
          (match acc with
          | Some (_, bp) when bp >= p -> acc
          | Some _ | None -> Some (b.Cfg.label, p))
        | None -> acc)
    None cfg.Cfg.blocks

let select ?(min_probability = 0.6) cfg =
  (match Cfg.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Trace.select: " ^ msg));
  let freqs = Cfg.frequencies cfg in
  let taken = Hashtbl.create 16 in
  let hottest_unvisited () =
    List.fold_left
      (fun acc (label, f) ->
        if Hashtbl.mem taken label then acc
        else
          match acc with
          | Some (_, bf) when bf >= f -> acc
          | Some _ | None -> Some (label, f))
      None freqs
  in
  let traces = ref [] in
  let rec build () =
    match hottest_unvisited () with
    | None -> ()
    | Some (seed, _) ->
      Hashtbl.add taken seed ();
      (* Grow forward along mutually-most-likely, sufficiently probable
         edges. *)
      let forward = ref [] in
      let cur = ref seed in
      let growing = ref true in
      while !growing do
        match most_likely_succ cfg ~taken !cur with
        | Some (next, p)
          when p >= min_probability
               && (match most_likely_pred cfg ~taken:(Hashtbl.create 0) next with
                  | Some (back, _) -> back = !cur
                  | None -> false) ->
          Hashtbl.add taken next ();
          forward := next :: !forward;
          cur := next
        | Some _ | None -> growing := false
      done;
      (* Grow backward symmetrically. *)
      let backward = ref [] in
      let cur = ref seed in
      let growing = ref true in
      while !growing do
        match most_likely_pred cfg ~taken !cur with
        | Some (prev, p) when p >= min_probability ->
          Hashtbl.add taken prev ();
          backward := prev :: !backward;
          cur := prev
        | Some _ | None -> growing := false
      done;
      traces := (List.rev !backward @ [ seed ] @ List.rev !forward) :: !traces;
      build ()
  in
  build ();
  List.rev !traces

let region_of_trace cfg labels =
  if labels = [] then invalid_arg "Trace.region_of_trace: empty trace";
  let name = String.concat "+" labels in
  let b = Cs_ddg.Builder.create ~name () in
  (* SSA renaming: program variable -> current region register. *)
  let env = Hashtbl.create 32 in
  let read var =
    match Hashtbl.find_opt env var with
    | Some r -> r
    | None ->
      let r = Cs_ddg.Builder.live_in b in
      Hashtbl.replace env var r;
      r
  in
  List.iter
    (fun label ->
      match Cfg.find_block cfg label with
      | None -> invalid_arg (Printf.sprintf "Trace.region_of_trace: unknown block %S" label)
      | Some block ->
        List.iter
          (fun (pi : Cfg.pinstr) ->
            let srcs = List.map read pi.Cfg.srcs in
            let dst =
              Cs_ddg.Builder.emit b ?preplace:pi.Cfg.preplace ~tag:pi.Cfg.tag pi.Cfg.op
                ~dst:(pi.Cfg.dst <> None) srcs
            in
            match (pi.Cfg.dst, dst) with
            | Some var, Some r -> Hashtbl.replace env var r
            | _ -> ())
          block.Cfg.body)
    labels;
  (* Last definition of every variable is live at trace exit. *)
  Hashtbl.iter (fun _ r -> Cs_ddg.Builder.mark_live_out b r) env;
  Cs_ddg.Builder.finish b

let regions ?min_probability cfg =
  List.map (region_of_trace cfg) (select ?min_probability cfg)
