(** A small control-flow-graph IR and block frequency estimation.

    The paper's scheduler "operates on individual scheduling units,
    which may be basic blocks, traces, superblocks, or hyperblocks"
    (Sec. 3); Rawcc "divides each input program into one or more
    scheduling traces" (Sec. 5). This module provides the program-level
    IR those units are formed from: basic blocks of (non-SSA)
    instructions over program variables, connected by probability-
    weighted control edges. {!Trace} forms the scheduling units. *)

type pinstr = {
  op : Cs_ddg.Opcode.t;
  dst : Cs_ddg.Reg.t option; (** program variable written *)
  srcs : Cs_ddg.Reg.t list; (** program variables read *)
  preplace : int option;
  tag : string;
}

val pinstr :
  ?preplace:int -> ?tag:string -> Cs_ddg.Opcode.t -> ?dst:Cs_ddg.Reg.t ->
  Cs_ddg.Reg.t list -> pinstr

type block = {
  label : string;
  body : pinstr list;
  succs : (string * float) list;
  (** successor labels with branch probabilities; empty for exits *)
}

type t = {
  entry : string;
  blocks : block list;
}

val find_block : t -> string -> block option

val validate : t -> (unit, string) result
(** Entry exists, successor labels resolve, probabilities are in
    [\[0,1\]] and sum to ~1 per branching block, labels unique. *)

val frequencies : ?iterations:int -> t -> (string * float) list
(** Expected executions per entry execution, by damped fixed-point
    propagation (handles loops); entry has frequency 1. *)

val pp : Format.formatter -> t -> unit
