lib/cfg/trace.ml: Cfg Cs_ddg Hashtbl List Printf String
