lib/cfg/superblock.mli: Cfg
