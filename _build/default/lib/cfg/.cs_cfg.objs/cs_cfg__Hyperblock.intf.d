lib/cfg/hyperblock.mli: Cfg Cs_ddg
