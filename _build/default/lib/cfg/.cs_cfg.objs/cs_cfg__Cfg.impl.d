lib/cfg/cfg.ml: Cs_ddg Float Format Hashtbl List Printf String
