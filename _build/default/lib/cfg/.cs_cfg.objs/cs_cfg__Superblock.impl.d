lib/cfg/superblock.ml: Cfg List Trace
