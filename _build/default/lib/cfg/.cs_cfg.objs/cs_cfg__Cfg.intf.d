lib/cfg/cfg.mli: Cs_ddg Format
