lib/cfg/generate.ml: Cfg Cs_ddg Cs_util List Printf
