lib/cfg/hyperblock.ml: Cfg Cs_ddg Hashtbl List Map Option Printf String
