lib/cfg/generate.mli: Cfg
