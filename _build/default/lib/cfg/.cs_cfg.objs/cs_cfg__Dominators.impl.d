lib/cfg/dominators.ml: Cfg Hashtbl List Option Set String
