lib/cfg/trace.mli: Cfg Cs_ddg
