type pinstr = {
  op : Cs_ddg.Opcode.t;
  dst : Cs_ddg.Reg.t option;
  srcs : Cs_ddg.Reg.t list;
  preplace : int option;
  tag : string;
}

let pinstr ?preplace ?(tag = "") op ?dst srcs = { op; dst; srcs; preplace; tag }

type block = {
  label : string;
  body : pinstr list;
  succs : (string * float) list;
}

type t = {
  entry : string;
  blocks : block list;
}

let find_block t label = List.find_opt (fun b -> b.label = label) t.blocks

let validate t =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let labels = List.map (fun b -> b.label) t.blocks in
  if List.length labels <> List.length (List.sort_uniq compare labels) then
    fail "duplicate block labels";
  if find_block t t.entry = None then fail "entry %S does not exist" t.entry;
  List.iter
    (fun b ->
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 b.succs in
      if b.succs <> [] && Float.abs (total -. 1.0) > 1e-6 then
        fail "block %S branch probabilities sum to %g" b.label total;
      List.iter
        (fun (s, p) ->
          if p < 0.0 || p > 1.0 then fail "block %S edge to %S has probability %g" b.label s p;
          if find_block t s = None then fail "block %S branches to unknown %S" b.label s)
        b.succs)
    t.blocks;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps))

let frequencies ?(iterations = 64) t =
  (* Damped fixed point: freq = entry-indicator + damping * inflow. The
     damping bounds loop frequencies (a 0.9-probability self loop reads
     as ~7x rather than diverging), which is all trace selection needs. *)
  let damping = 0.85 in
  let freq = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace freq b.label (if b.label = t.entry then 1.0 else 0.0)) t.blocks;
  for _ = 1 to iterations do
    List.iter
      (fun b ->
        let inflow =
          List.fold_left
            (fun acc pred ->
              match List.assoc_opt b.label pred.succs with
              | Some p -> acc +. (p *. Hashtbl.find freq pred.label)
              | None -> acc)
            0.0 t.blocks
        in
        let base = if b.label = t.entry then 1.0 else 0.0 in
        Hashtbl.replace freq b.label (base +. (damping *. inflow)))
      t.blocks
  done;
  List.map (fun b -> (b.label, Hashtbl.find freq b.label)) t.blocks

let pp fmt t =
  Format.fprintf fmt "@[<v>cfg (entry %s)@," t.entry;
  List.iter
    (fun b ->
      Format.fprintf fmt "%s: %d instrs -> %s@," b.label (List.length b.body)
        (String.concat ", "
           (List.map (fun (s, p) -> Printf.sprintf "%s(%.2f)" s p) b.succs)))
    t.blocks;
  Format.fprintf fmt "@]"
