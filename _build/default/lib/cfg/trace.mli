(** Trace selection (Fisher 1981, cited by the paper as the classic
    scheduling-unit former) and trace-to-region conversion.

    Traces are grown greedily from the hottest unvisited block along
    mutually-most-likely edges; the resulting block sequences are
    mutually exclusive and cover the CFG. Each trace is converted to a
    {!Cs_ddg.Region.t} scheduling unit by SSA renaming: the first read
    of a program variable becomes a live-in, each write creates a fresh
    register, and the last writes are the region's live-outs. *)

val select : ?min_probability:float -> Cfg.t -> string list list
(** Traces in decreasing seed-frequency order; every block appears in
    exactly one trace. Growth stops at edges rarer than
    [min_probability] (default 0.6) or at blocks already taken. *)

val region_of_trace : Cfg.t -> string list -> Cs_ddg.Region.t
(** Raises [Invalid_argument] on unknown labels or an empty trace. *)

val regions : ?min_probability:float -> Cfg.t -> Cs_ddg.Region.t list
(** [select] + [region_of_trace] for the whole program. *)
