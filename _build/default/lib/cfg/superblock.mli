(** Superblock formation (Hwu et al. 1993, cited in the paper's Sec. 3):
    a trace with no side entrances. Starting from Fisher traces, side
    entrances are removed by {e tail duplication}: when an off-trace
    block branches into the middle of a trace, the rest of the trace is
    cloned and the offending edge retargeted to the clone. The result is
    a transformed CFG whose hot paths are single-entry, so each
    superblock converts to one scheduling region with no join
    constraints. *)

val side_entrances : Cfg.t -> string list -> (string * string) list
(** Edges [(from_block, into_trace_block)] entering the trace anywhere
    but its head. *)

val tail_duplicate : Cfg.t -> string list -> Cfg.t * string list
(** Removes every side entrance of the trace by duplicating the trace
    suffix (cloned blocks get a [.dup] suffix); returns the transformed
    CFG and the now-side-entrance-free superblock. The trace head keeps
    its label, so entry traces stay entry traces. *)

val form : ?min_probability:float -> Cfg.t -> Cfg.t * string list list
(** Select traces, tail-duplicate each into a superblock, and return the
    transformed CFG plus the superblocks (convert them with
    {!Trace.region_of_trace} against the {e returned} CFG). *)
