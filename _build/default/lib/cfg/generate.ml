let fp_ops = [| Cs_ddg.Opcode.Fadd; Fsub; Fmul; Add; Xor |]

let block_body ~rng ~instrs_per_block ~variables ~mem_fraction ~banks =
  List.init instrs_per_block (fun _ ->
      let dst = Cs_util.Rng.int rng variables in
      if Cs_util.Rng.float rng 1.0 < mem_fraction then begin
        let addr = Cs_util.Rng.int rng variables in
        let bank = Cs_util.Rng.int rng banks in
        if Cs_util.Rng.bool rng then
          Cfg.pinstr ~preplace:bank Cs_ddg.Opcode.Load ~dst [ addr ]
        else Cfg.pinstr ~preplace:bank Cs_ddg.Opcode.Store [ addr; Cs_util.Rng.int rng variables ]
      end
      else begin
        let a = Cs_util.Rng.int rng variables and b = Cs_util.Rng.int rng variables in
        Cfg.pinstr (Cs_util.Rng.choose rng fp_ops) ~dst [ a; b ]
      end)

let acyclic ?(segments = 6) ?(instrs_per_block = 6) ?(variables = 8)
    ?(hot_probability = 0.85) ?(mem_fraction = 0.25) ?(banks = 4) ~seed () =
  if segments <= 0 then invalid_arg "Generate.acyclic: need positive segments";
  let rng = Cs_util.Rng.create seed in
  let body () = block_body ~rng ~instrs_per_block ~variables ~mem_fraction ~banks in
  let blocks = ref [] in
  let add label body succs = blocks := { Cfg.label; body; succs } :: !blocks in
  (* Seed definitions so early uses are not all live-ins. *)
  let preamble =
    List.init variables (fun k -> Cfg.pinstr Cs_ddg.Opcode.Const ~dst:k [])
  in
  let rec build k =
    let label = Printf.sprintf "s%d" k in
    if k = segments then begin
      add label (body ()) [];
      label
    end
    else begin
      let next = build (k + 1) in
      if Cs_util.Rng.bool rng then begin
        (* Straight segment. *)
        add label (body ()) [ (next, 1.0) ];
        label
      end
      else begin
        (* Diamond: hot and cold arms rejoining at [next]. *)
        let hot = label ^ ".hot" and cold = label ^ ".cold" in
        add hot (body ()) [ (next, 1.0) ];
        add cold (body ()) [ (next, 1.0) ];
        add label (body ()) [ (hot, hot_probability); (cold, 1.0 -. hot_probability) ];
        label
      end
    end
  in
  let entry = build 0 in
  (* Prepend the preamble to the entry block. *)
  let blocks =
    List.map
      (fun b ->
        if b.Cfg.label = entry then { b with Cfg.body = preamble @ b.Cfg.body } else b)
      !blocks
  in
  let cfg = { Cfg.entry; blocks } in
  match Cfg.validate cfg with
  | Ok () -> cfg
  | Error msg -> invalid_arg ("Generate.acyclic: internal: " ^ msg)
