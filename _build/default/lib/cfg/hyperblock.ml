module StringMap = Map.Make (String)

(* Topological order of blocks reachable from [entry]; rejects cycles. *)
let topo_reachable cfg ~entry =
  let order = ref [] in
  let state = Hashtbl.create 16 (* label -> `Visiting | `Done *) in
  let rec visit label =
    match Hashtbl.find_opt state label with
    | Some `Done -> ()
    | Some `Visiting -> invalid_arg "Hyperblock.region_of: region contains a cycle"
    | None ->
      Hashtbl.replace state label `Visiting;
      (match Cfg.find_block cfg label with
      | None -> invalid_arg (Printf.sprintf "Hyperblock.region_of: unknown block %S" label)
      | Some b -> List.iter (fun (s, _) -> visit s) b.Cfg.succs);
      Hashtbl.replace state label `Done;
      order := label :: !order
  in
  visit entry;
  !order

let region_of cfg ~entry =
  (match Cfg.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hyperblock.region_of: " ^ msg));
  let order = topo_reachable cfg ~entry in
  let b = Cs_ddg.Builder.create ~name:("hyper:" ^ entry) () in
  (* Per-block state after processing: variable environment and the
     predicate guarding each outgoing edge (for branching blocks). *)
  let exit_env : (string, Cs_ddg.Reg.t StringMap.t) Hashtbl.t = Hashtbl.create 16 in
  let predicate_of : (string, Cs_ddg.Reg.t) Hashtbl.t = Hashtbl.create 16 in
  let var_key v = string_of_int v in
  let reachable_preds label =
    List.filter
      (fun blk ->
        Hashtbl.mem exit_env blk.Cfg.label
        && List.mem_assoc label blk.Cfg.succs)
      cfg.Cfg.blocks
  in
  List.iter
    (fun label ->
      let block = Option.get (Cfg.find_block cfg label) in
      let preds = reachable_preds label in
      (* Entry environment: merge predecessors' exit environments,
         select-merging variables whose definitions disagree. *)
      let env =
        match preds with
        | [] -> StringMap.empty
        | [ p ] -> Hashtbl.find exit_env p.Cfg.label
        | first :: rest ->
          let merged = ref (Hashtbl.find exit_env first.Cfg.label) in
          List.iter
            (fun p ->
              let other = Hashtbl.find exit_env p.Cfg.label in
              merged :=
                StringMap.merge
                  (fun _ a bv ->
                    match (a, bv) with
                    | Some ra, Some rb when Cs_ddg.Reg.equal ra rb -> Some ra
                    | Some ra, Some rb ->
                      (* Guard by the predicate of the branch that decides
                         which path executed: [p]'s controlling branch. *)
                      let guard =
                        match Hashtbl.find_opt predicate_of p.Cfg.label with
                        | Some g -> g
                        | None ->
                          (match Hashtbl.find_opt predicate_of first.Cfg.label with
                          | Some g -> g
                          | None ->
                            invalid_arg
                              "Hyperblock.region_of: join without a controlling predicate")
                      in
                      Some (Cs_ddg.Builder.op3 b ~tag:"phi" Cs_ddg.Opcode.Select guard rb ra)
                    | Some _, None | None, Some _ ->
                      invalid_arg
                        (Printf.sprintf
                           "Hyperblock.region_of: variable partially defined at join %S" label)
                    | None, None -> None)
                  !merged other)
            rest;
          !merged
      in
      let env = ref env in
      let read var =
        match StringMap.find_opt (var_key var) !env with
        | Some r -> r
        | None ->
          let r = Cs_ddg.Builder.live_in b in
          env := StringMap.add (var_key var) r !env;
          r
      in
      List.iter
        (fun (pi : Cfg.pinstr) ->
          let srcs = List.map read pi.Cfg.srcs in
          let dst =
            Cs_ddg.Builder.emit b ?preplace:pi.Cfg.preplace ~tag:pi.Cfg.tag pi.Cfg.op
              ~dst:(pi.Cfg.dst <> None) srcs
          in
          match (pi.Cfg.dst, dst) with
          | Some var, Some r -> env := StringMap.add (var_key var) r !env
          | _ -> ())
        block.Cfg.body;
      (* Branching block: synthesize the predicate its successors are
         guarded by (a compare of the last value against a constant). *)
      if List.length block.Cfg.succs > 1 then begin
        let scrutinee =
          match StringMap.choose_opt !env with
          | Some (_, r) -> r
          | None -> Cs_ddg.Builder.op0 b ~tag:"guard.src" Cs_ddg.Opcode.Const
        in
        let zero = Cs_ddg.Builder.op0 b ~tag:"0" Cs_ddg.Opcode.Const in
        let p = Cs_ddg.Builder.op2 b ~tag:("p." ^ label) Cs_ddg.Opcode.Cmp scrutinee zero in
        List.iter (fun (s, _) -> Hashtbl.replace predicate_of s p) block.Cfg.succs
      end
      else
        (* Propagate the guard through straight-line successors. *)
        (match Hashtbl.find_opt predicate_of label with
        | Some p ->
          List.iter (fun (s, _) -> Hashtbl.replace predicate_of s p) block.Cfg.succs
        | None -> ());
      Hashtbl.replace exit_env label !env)
    order;
  (* Values live at the hyperblock exit: last block's environment. *)
  (match order with
  | [] -> ()
  | _ ->
    let last = List.nth order (List.length order - 1) in
    StringMap.iter (fun _ r -> Cs_ddg.Builder.mark_live_out b r) (Hashtbl.find exit_env last));
  Cs_ddg.Builder.finish b
