let side_entrances cfg trace =
  match trace with
  | [] -> []
  | _head :: tail ->
    let on_trace = List.mapi (fun k l -> (l, k)) trace in
    List.concat_map
      (fun b ->
        List.filter_map
          (fun (s, _) ->
            match (List.assoc_opt s on_trace, List.assoc_opt b.Cfg.label on_trace) with
            | Some k, pred_pos when List.mem s tail ->
              (* An edge into the middle of the trace is a side entrance
                 unless it is the trace's own fallthrough. *)
              let is_fallthrough =
                match pred_pos with Some p -> p + 1 = k | None -> false
              in
              if is_fallthrough then None else Some (b.Cfg.label, s)
            | _ -> None)
          b.Cfg.succs)
      cfg.Cfg.blocks

let dup_label l = l ^ ".dup"

let tail_duplicate cfg trace =
  match side_entrances cfg trace with
  | [] -> (cfg, trace)
  | entrances ->
    (* Duplicate the suffix of the trace starting at the earliest block
       with a side entrance; retarget all offending edges to the clones. *)
    let entered = List.map snd entrances in
    let rec split prefix = function
      | [] -> (List.rev prefix, [])
      | l :: rest when List.mem l entered -> (List.rev prefix, l :: rest)
      | l :: rest -> split (l :: prefix) rest
    in
    let _prefix, suffix = split [] trace in
    let suffix_set = suffix in
    let clone_of l = if List.mem l suffix_set then dup_label l else l in
    let clones =
      List.filter_map
        (fun l ->
          match Cfg.find_block cfg l with
          | None -> None
          | Some b ->
            (* The clone branches wherever the original did; on-suffix
               successors stay within the cloned suffix. *)
            Some
              { Cfg.label = dup_label l; body = b.Cfg.body;
                succs = List.map (fun (s, p) -> (clone_of s, p)) b.Cfg.succs })
        suffix_set
    in
    (* Retarget side entrances (edges from off-trace blocks into the
       suffix) at the clones; the trace's own edges are untouched. *)
    let blocks =
      List.map
        (fun b ->
          if List.mem b.Cfg.label trace then b
          else
            { b with
              Cfg.succs =
                List.map
                  (fun (s, p) -> if List.mem s suffix_set then (dup_label s, p) else (s, p))
                  b.Cfg.succs })
        cfg.Cfg.blocks
    in
    ({ cfg with Cfg.blocks = blocks @ clones }, trace)

let form ?min_probability cfg =
  let traces = Trace.select ?min_probability cfg in
  let final_cfg, superblocks =
    List.fold_left
      (fun (acc_cfg, acc_sbs) trace ->
        let next_cfg, sb = tail_duplicate acc_cfg trace in
        (next_cfg, sb :: acc_sbs))
      (cfg, []) traces
  in
  (final_cfg, List.rev superblocks)
