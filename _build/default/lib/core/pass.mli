(** A convergent-scheduling pass: an independent heuristic that reads
    the context and edits the preference matrix (paper Sec. 2). Passes
    never communicate except through the matrix. The driver normalizes
    after every pass, so passes may leave rows unnormalized. *)

type kind =
  | Space (** edits cluster preferences — tracked by Figs. 7/9 *)
  | Time (** edits only temporal preferences *)
  | Spacetime

type t = {
  name : string;
  kind : kind;
  apply : Context.t -> Weights.t -> unit;
}

val make : name:string -> kind:kind -> (Context.t -> Weights.t -> unit) -> t
val kind_to_string : kind -> string
