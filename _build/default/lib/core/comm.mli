(** COMM — communication minimization (paper Sec. 4): skew each
    instruction's weights toward the clusters where its dependence-graph
    neighbors sit, by multiplying [W(i,c,t)] with the summed weight of
    the neighbors at [(c,t)] (computed from a snapshot, so the pass is
    order-independent). A small [eps] keeps feasible slots alive when
    neighbors carry no weight there.

    The paper's variant additionally considers grand-parents and
    grand-children (at half weight) and reinforces the currently
    preferred slot by a factor of two; both are on by default, matching
    "we usually run it together with COMM".

    By default the pull is the neighbors' {e cluster marginal}, applied
    uniformly across an instruction's feasible slots: dependent
    instructions necessarily execute at different cycles, so coupling on
    identical (c,t) entries (the paper's literal formula) reads zero
    overlap precisely on tight dependence chains. Set [per_slot:true]
    for the literal per-slot product. *)

val pass :
  ?eps:float -> ?grand:bool -> ?grand_weight:float -> ?per_slot:bool ->
  ?strengthen_preferred:float -> unit -> Pass.t
