(** PLACE (paper Sec. 4): multiply the weights of every preplaced
    instruction on its home cluster by a large factor (100 in the
    paper) — preplacement is a correctness constraint, so the boost must
    dominate every other heuristic. Instructions anchored through homed
    live-in registers receive a smaller, soft boost. *)

val pass : ?factor:float -> ?live_in_factor:float -> unit -> Pass.t
