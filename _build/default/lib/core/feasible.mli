(** FEASIBLE (the paper mentions this as a sibling of INITTIME): squash
    the weights of every cluster that has no functional unit able to
    execute an instruction's opcode. On the homogeneous machines of the
    paper this is a no-op, but it makes the framework correct on
    heterogeneous cluster mixes. *)

val pass : unit -> Pass.t
