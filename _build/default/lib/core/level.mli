(** LEVEL — level distribution (paper Sec. 4): distribute the
    instructions of each depth level across clusters to expose
    parallelism, while keeping graph-wise close instructions together to
    bound communication.

    Instructions whose assignment is already confident seed per-cluster
    bins; the rest are dealt round-robin, each bin receiving the
    candidate farthest from it (preferring candidates at distance
    greater than [granularity] from every existing bin, so nearby
    instructions are not torn apart).

    [stride] groups that many consecutive levels per application; the
    paper uses 4 on Raw — "the minimum granularity of parallelism that
    Raw can profitably exploit". *)

val pass :
  ?stride:int -> ?granularity:int -> ?confidence_threshold:float ->
  ?boost:float -> unit -> Pass.t
