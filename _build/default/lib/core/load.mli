(** LOAD — load balancing (paper Sec. 4): divide every weight on a
    cluster by that cluster's total load (the summed cluster-marginal
    preference of all instructions), deflating overloaded clusters and
    inflating idle ones. *)

val pass : unit -> Pass.t
