let apply ctx w =
  let a = ctx.Context.analysis in
  for i = 0 to Weights.n w - 1 do
    let lo = Context.clamp_slot ctx (Cs_ddg.Analysis.earliest a i) in
    let hi = Context.clamp_slot ctx (Cs_ddg.Analysis.latest a i) in
    for tt = 0 to Weights.nt w - 1 do
      if tt < lo || tt > hi then Weights.scale_time w i tt 0.0
    done
  done

let pass () = Pass.make ~name:"INITTIME" ~kind:Pass.Time apply
