(** REGPRESS — register-pressure relief (an extension pass; the paper's
    Sec. 6 notes the framework extends to register allocation "by adding
    preference maps for registers"). Estimates each cluster's peak
    register pressure from the current preferred assignment and
    preferred times, then deflates the preferences of low-confidence
    instructions for clusters whose peak pressure exceeds the register
    file size. *)

val pass : ?registers_per_cluster:int -> ?confidence_threshold:float -> unit -> Pass.t
