let apply ctx w =
  let graph = Context.graph ctx in
  let machine = ctx.Context.machine in
  for i = 0 to Weights.n w - 1 do
    let op = (Cs_ddg.Graph.instr graph i).Cs_ddg.Instr.op in
    for c = 0 to Weights.nc w - 1 do
      if not (Cs_machine.Machine.can_execute machine ~cluster:c op) then
        Weights.scale_cluster w i c 0.0
    done
  done

let pass () = Pass.make ~name:"FEASIBLE" ~kind:Pass.Space apply
