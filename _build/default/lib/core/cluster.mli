(** CLUSTER — dependence-chain clustering (the paper's stated future
    work: "we expect that integrating a clustering pass to convergent
    scheduling will address this problem", Sec. 5). Groups instructions
    DSC-style by merging every instruction with the predecessor on its
    critical (ASAP-determining) edge, then pulls each group toward the
    group's consensus cluster, so chains that should never be split stop
    competing with each other during convergence. Groups never span
    conflicting preplacement homes. *)

val pass : ?boost:float -> unit -> Pass.t

val groups : Context.t -> int list list
(** The chain groups (exposed for tests); singleton groups omitted. *)
