(** FIRST (paper Sec. 4): on the Chorus clustered VLIW all live data is
    available in the first cluster at the start of every scheduling
    unit, so schedules that use the first cluster avoid copies. Scale
    every instruction's weights on cluster 0 by 1.2. *)

val pass : ?factor:float -> unit -> Pass.t
