(** PATHPROP — path propagation (paper Sec. 4): pick instructions whose
    spatial assignment is confident and diffuse their preference
    matrices along downward and upward dependence paths, blending 50/50
    into each less-confident instruction encountered, until an
    instruction at least as confident stops the walk. *)

val pass : ?confidence_threshold:float -> ?blend_keep:float -> unit -> Pass.t
