(** PLACEPROP — preplacement propagation (paper Sec. 4): for every
    non-preplaced instruction, divide its weight on each cluster [c] by
    the (undirected dependence-graph) distance to the closest
    instruction preplaced on [c]. Instructions near an anchor are pulled
    to the anchor's cluster; clusters with no preplaced instructions at
    all convey no information and are left untouched.

    [Weighted] mode scales by the sum of inverse-square distances to
    {e all} of a cluster's anchors instead of the nearest one: stencil
    interior nodes that sit between anchors of several banks then follow
    the majority bank instead of tying. [Nearest] is the paper's formula
    and the default. *)

type mode =
  | Nearest
  | Weighted

val pass : ?mode:mode -> unit -> Pass.t
