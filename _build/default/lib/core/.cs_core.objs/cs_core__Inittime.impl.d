lib/core/inittime.ml: Context Cs_ddg Pass Weights
