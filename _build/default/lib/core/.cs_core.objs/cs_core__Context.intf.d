lib/core/context.mli: Cs_ddg Cs_machine Cs_util
