lib/core/cluster.ml: Array Context Cs_ddg Cs_util Hashtbl List Pass Weights
