lib/core/weights.mli: Format
