lib/core/trace.mli: Format Pass
