lib/core/feasible.ml: Context Cs_ddg Cs_machine Pass Weights
