lib/core/pass.ml: Context Weights
