lib/core/placeprop.mli: Pass
