lib/core/level.mli: Pass
