lib/core/pathprop.ml: Context Cs_ddg Float List Pass Weights
