lib/core/path.mli: Pass
