lib/core/emphcp.ml: Context Cs_ddg Pass Weights
