lib/core/noise.ml: Context Cs_util Pass Weights
