lib/core/pathprop.mli: Pass
