lib/core/weights.ml: Array Float Format Printf String
