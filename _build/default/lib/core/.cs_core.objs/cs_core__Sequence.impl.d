lib/core/sequence.ml: Cluster Comm Emphcp Feasible First Inittime Level List Load Noise Option Pass Path Pathprop Place Placeprop Printf Regpress String
