lib/core/cluster.mli: Context Pass
