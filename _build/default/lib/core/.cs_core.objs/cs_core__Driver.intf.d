lib/core/driver.mli: Context Cs_ddg Cs_machine Pass Trace Weights
