lib/core/driver.ml: Array Context Cs_ddg Float List Pass Trace Weights
