lib/core/level.ml: Array Context Cs_ddg List Pass Weights
