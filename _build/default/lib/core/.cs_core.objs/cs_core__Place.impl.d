lib/core/place.ml: Context Cs_ddg Pass Weights
