lib/core/sequence.mli: Pass
