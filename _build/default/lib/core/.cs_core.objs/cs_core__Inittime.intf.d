lib/core/inittime.mli: Pass
