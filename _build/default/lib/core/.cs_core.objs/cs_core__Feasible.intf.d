lib/core/feasible.mli: Pass
