lib/core/pass.mli: Context Weights
