lib/core/regpress.mli: Pass
