lib/core/load.ml: Array Context Pass Weights
