lib/core/emphcp.mli: Pass
