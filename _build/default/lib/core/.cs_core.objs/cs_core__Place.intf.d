lib/core/place.mli: Pass
