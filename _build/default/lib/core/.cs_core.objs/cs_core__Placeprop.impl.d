lib/core/placeprop.ml: Array Context Cs_ddg List Pass Weights
