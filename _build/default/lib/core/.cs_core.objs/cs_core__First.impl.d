lib/core/first.ml: Context Pass Weights
