lib/core/comm.mli: Pass
