lib/core/first.mli: Pass
