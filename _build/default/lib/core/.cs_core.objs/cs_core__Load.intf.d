lib/core/load.mli: Pass
