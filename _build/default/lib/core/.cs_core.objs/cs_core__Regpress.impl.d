lib/core/regpress.ml: Array Context Cs_ddg List Pass Weights
