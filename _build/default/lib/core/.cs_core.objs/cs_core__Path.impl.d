lib/core/path.ml: Array Context Cs_ddg Lazy List Option Pass Weights
