lib/core/context.ml: Array Cs_ddg Cs_machine Cs_util List
