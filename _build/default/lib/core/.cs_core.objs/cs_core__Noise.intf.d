lib/core/noise.mli: Pass
