lib/core/comm.ml: Context Cs_ddg Hashtbl List Pass Weights
