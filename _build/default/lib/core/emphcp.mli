(** EMPHCP — emphasize critical-path distance (paper Sec. 4): reinforce
    each instruction's weight at its level (its start time on a machine
    with infinite resources, i.e. its ASAP cycle) to help temporal
    convergence. *)

val pass : ?factor:float -> unit -> Pass.t
