(** Everything a convergent pass may consult besides the weight matrix:
    the dependence graph and its analyses, the machine model,
    preplacement information, and the run's random stream (paper Fig. 3:
    "Graph dependence / Preplaced instruction info / Machine model and
    other constraints"). *)

type t = {
  region : Cs_ddg.Region.t;
  machine : Cs_machine.Machine.t;
  analysis : Cs_ddg.Analysis.t;
  rng : Cs_util.Rng.t;
  nt : int; (** number of time slots in the weight matrix *)
  preplaced_on : int list array; (** instruction ids preplaced on each cluster *)
}

val make :
  ?seed:int -> ?nt_cap:int -> machine:Cs_machine.Machine.t -> Cs_ddg.Region.t -> t
(** Builds analyses with the machine's latency model. The time dimension
    is [min (max cpl 1) nt_cap] (default cap 512), mirroring the paper's
    "as many time slots as the critical-path length". Default seed 42. *)

val graph : t -> Cs_ddg.Graph.t
val n_instrs : t -> int
val n_clusters : t -> int

val clamp_slot : t -> int -> int
(** Clamp a cycle to a valid slot index of the weight matrix. *)

val home_of : t -> int -> int option
(** The cluster an instruction is anchored to, if any: its own
    preplacement, or the home of a homed live-in register it reads. *)

val any_preplacement : t -> bool
