(** INITTIME (paper Sec. 4): squash to zero every time slot outside an
    instruction's feasible window [\[lp, CPL - ls\]] — before its longest
    predecessor chain or after the latest start that still meets the
    critical-path length. Critical instructions end up with exactly one
    feasible slot. *)

val pass : unit -> Pass.t
