type kind = Space | Time | Spacetime

type t = {
  name : string;
  kind : kind;
  apply : Context.t -> Weights.t -> unit;
}

let make ~name ~kind apply = { name; kind; apply }

let kind_to_string = function
  | Space -> "space"
  | Time -> "time"
  | Spacetime -> "space+time"
