let raw_default () =
  [ Inittime.pass (); Placeprop.pass (); Load.pass (); Place.pass (); Path.pass ();
    Pathprop.pass (); Level.pass ~stride:4 (); Pathprop.pass (); Comm.pass ();
    Pathprop.pass (); Emphcp.pass () ]

let vliw_default () =
  [ Inittime.pass (); Noise.pass (); First.pass (); Path.pass (); Load.pass ();
    Comm.pass (); Place.pass (); Placeprop.pass (); Load.pass (); Comm.pass ();
    Emphcp.pass () ]

let registry : (string * (unit -> Pass.t)) list =
  [ ("INITTIME", Inittime.pass); ("NOISE", fun () -> Noise.pass ());
    ("PLACE", fun () -> Place.pass ()); ("FIRST", fun () -> First.pass ());
    ("PATH", fun () -> Path.pass ()); ("COMM", fun () -> Comm.pass ());
    ("PLACEPROP", fun () -> Placeprop.pass ()); ("LOAD", Load.pass);
    ("LEVEL", fun () -> Level.pass ()); ("PATHPROP", fun () -> Pathprop.pass ());
    ("EMPHCP", fun () -> Emphcp.pass ()); ("FEASIBLE", Feasible.pass);
    ("REGPRESS", fun () -> Regpress.pass ()); ("CLUSTER", fun () -> Cluster.pass ()) ]

let available = List.map fst registry

let of_name name =
  let upper = String.uppercase_ascii name in
  List.assoc_opt upper registry |> Option.map (fun mk -> mk ())

let of_names names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest ->
      (match of_name name with
      | Some p -> go (p :: acc) rest
      | None -> Error (Printf.sprintf "unknown pass %S (available: %s)" name
                         (String.concat ", " available)))
  in
  go [] names

let names passes = List.map (fun p -> p.Pass.name) passes
