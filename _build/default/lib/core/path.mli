(** PATH — critical-path strengthening (paper Sec. 4): keep the
    instructions of a critical path together on one cluster by tripling
    their weights there. If path instructions are biased toward a
    cluster (preplacement, or an existing confident preference), the
    path moves to that cluster; with conflicting biases the path is
    broken into segments, each anchored near its own home cluster; with
    no bias at all the least-loaded cluster is chosen. *)

val pass : ?boost:float -> ?confidence_threshold:float -> unit -> Pass.t
