type step = {
  pass_name : string;
  pass_kind : Pass.kind;
  changed : int;
  total : int;
}

type t = step list

let changed_fraction s =
  if s.total = 0 then 0.0 else float_of_int s.changed /. float_of_int s.total

let space_steps t =
  List.filter
    (fun s -> match s.pass_kind with Pass.Space | Pass.Spacetime -> true | Pass.Time -> false)
    t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-10s %5.1f%% (%d/%d)@," s.pass_name
        (100.0 *. changed_fraction s)
        s.changed s.total)
    t;
  Format.fprintf fmt "@]"
