(** Named pass sequences (paper Table 1) and a by-name pass registry so
    sequences can be described on a command line. *)

val raw_default : unit -> Pass.t list
(** Table 1(a): INITTIME, PLACEPROP, LOAD, PLACE, PATH, PATHPROP, LEVEL,
    PATHPROP, COMM, PATHPROP, EMPHCP — the sequence used for the Raw
    machine. *)

val vliw_default : unit -> Pass.t list
(** Table 1(b) — INITTIME, NOISE, FIRST, PATH, COMM, PLACE, PLACEPROP,
    COMM, EMPHCP — with a LOAD inserted after PATH and after PLACEPROP.
    The paper selected its per-architecture pass parameters by
    trial-and-error (Sec. 4); without the two LOADs our FIRST bias
    snowballs through COMM and overloads cluster 0, and the paper's
    Fig. 8 margins over UAS/PCC do not reproduce. See DESIGN.md. *)

val available : string list
(** Names accepted by {!of_names}, including the extension passes
    FEASIBLE, REGPRESS, and CLUSTER (the paper's suggested clustering
    integration, Sec. 5). *)

val of_name : string -> Pass.t option
(** Case-insensitive lookup with default parameters. *)

val of_names : string list -> (Pass.t list, string) result
(** All-or-nothing parse; the error names the unknown pass. *)

val names : Pass.t list -> string list
