(** NOISE (paper Sec. 4): add a small random perturbation to every
    weight to break symmetry and spread instructions across clusters.

    [amplitude] is relative to the mean weight [1 / (nc * nt)]; the
    default of 1.0 adds up to one mean-weight of noise per entry, which
    reproduces the paper's [rand() / RAND_MAX] on a freshly initialized
    (uniform) matrix. Noise draws come from the context's deterministic
    random stream. *)

val pass : ?amplitude:float -> unit -> Pass.t
