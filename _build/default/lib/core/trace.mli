(** Convergence traces: after every pass, the driver records which
    fraction of instructions changed their preferred cluster — the data
    behind the paper's Figs. 7 and 9. *)

type step = {
  pass_name : string;
  pass_kind : Pass.kind;
  changed : int; (** instructions whose preferred cluster changed *)
  total : int;
}

type t = step list
(** In application order. *)

val changed_fraction : step -> float

val space_steps : t -> step list
(** Steps of space-editing passes only (the figures "exclude passes that
    only modify temporal preferences"). *)

val pp : Format.formatter -> t -> unit
