let apply (_ : Context.t) w =
  let nc = Weights.nc w in
  let load = Array.make nc 0.0 in
  for i = 0 to Weights.n w - 1 do
    for c = 0 to nc - 1 do
      load.(c) <- load.(c) +. Weights.cluster_weight w i c
    done
  done;
  for i = 0 to Weights.n w - 1 do
    for c = 0 to nc - 1 do
      if load.(c) > 0.0 then Weights.scale_cluster w i c (1.0 /. load.(c))
    done
  done

let pass () = Pass.make ~name:"LOAD" ~kind:Pass.Space apply
