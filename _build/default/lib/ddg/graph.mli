(** The data dependence graph (DDG) of one scheduling region.

    Nodes are instructions (dense ids); edges are true (def-use) data
    dependences plus memory-ordering dependences added by the builder.
    The graph is immutable once built and is guaranteed acyclic. *)

type t

val of_instrs : Instr.t array -> extra_edges:(int * int) list -> t
(** Builds the DDG: def-use edges are derived from SSA register
    operands; [extra_edges] adds explicit ordering constraints (memory
    dependences). Raises [Invalid_argument] on duplicate register
    definitions, use of an undefined register that is not a live-in, or
    a cycle. Uses of registers never defined inside the region are
    treated as live-ins. *)

val n : t -> int
val instr : t -> int -> Instr.t
val instrs : t -> Instr.t array
val succs : t -> int -> int list
val preds : t -> int -> int list
val neighbors : t -> int -> int list
(** [preds @ succs], duplicates removed. *)

val n_edges : t -> int
val roots : t -> int list
(** Nodes with no predecessors, ascending. *)

val leaves : t -> int list
(** Nodes with no successors, ascending. *)

val topo_order : t -> int array
(** A topological order of all node ids. *)

val defining_instr : t -> Reg.t -> int option
(** The instruction that defines a register, if defined in-region. *)

val live_in_regs : t -> Reg.Set.t
(** Registers used but not defined in the region. *)

val preplaced : t -> (int * int) list
(** [(instr id, home cluster)] for every preplaced instruction. *)

val pp : Format.formatter -> t -> unit
