type t =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Cmp
  | Load
  | Store
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fsqrt
  | Fcmp
  | Mov
  | Const
  | Select
  | Transfer
  | Recv

type cls =
  | Int_op
  | Mul_op
  | Mem_op
  | Float_op
  | Fdiv_op
  | Move_op
  | Comm_op

let cls = function
  | Add | Sub | And | Or | Xor | Shl | Shr | Cmp | Select -> Int_op
  | Mul | Div -> Mul_op
  | Load | Store -> Mem_op
  | Fadd | Fsub | Fmul | Fcmp -> Float_op
  | Fdiv | Fsqrt -> Fdiv_op
  | Mov | Const -> Move_op
  | Transfer | Recv -> Comm_op

let is_memory = function
  | Load | Store -> true
  | Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Cmp | Fadd | Fsub
  | Fmul | Fdiv | Fsqrt | Fcmp | Mov | Const | Select | Transfer | Recv -> false

let writes_register = function
  | Store -> false
  | Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Cmp | Load | Fadd
  | Fsub | Fmul | Fdiv | Fsqrt | Fcmp | Mov | Const | Select | Transfer | Recv -> true

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Cmp -> "cmp"
  | Load -> "load"
  | Store -> "store"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fsqrt -> "fsqrt"
  | Fcmp -> "fcmp"
  | Mov -> "mov"
  | Const -> "const"
  | Select -> "select"
  | Transfer -> "transfer"
  | Recv -> "recv"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all =
  [ Add; Sub; Mul; Div; And; Or; Xor; Shl; Shr; Cmp; Load; Store; Fadd; Fsub;
    Fmul; Fdiv; Fsqrt; Fcmp; Mov; Const; Select; Transfer; Recv ]
