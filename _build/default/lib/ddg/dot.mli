(** Graphviz export of dependence graphs, for inspecting workloads the
    way the paper draws them (Figs. 2 and 4a). Preplaced instructions
    are drawn as triangles colored by home cluster, as in Fig. 4a. *)

val to_string : ?assignment:int array -> Graph.t -> string
(** [assignment], if given, colors every node by its assigned cluster. *)

val write_file : ?assignment:int array -> path:string -> Graph.t -> unit
