type t = {
  graph : Graph.t;
  lat : int array;
  earliest : int array;
  latest : int array;
  depth : int array;
  height : int array;
  cpl : int;
  dist_cache : (int, int array) Hashtbl.t;
}

let graph t = t.graph
let latency t i = t.lat.(i)
let earliest t i = t.earliest.(i)
let latest t i = t.latest.(i)
let slack t i = t.latest.(i) - t.earliest.(i)
let cpl t = t.cpl
let depth t i = t.depth.(i)
let height t i = t.height.(i)

let max_depth t = Array.fold_left max 0 t.depth

let make ~latency graph =
  let n = Graph.n graph in
  let lat =
    Array.init n (fun i ->
        let l = latency (Graph.instr graph i) in
        if l < 1 then invalid_arg "Analysis.make: latency must be >= 1";
        l)
  in
  let topo = Graph.topo_order graph in
  let earliest = Array.make n 0 in
  let depth = Array.make n 0 in
  Array.iter
    (fun i ->
      List.iter
        (fun p ->
          earliest.(i) <- max earliest.(i) (earliest.(p) + lat.(p));
          depth.(i) <- max depth.(i) (depth.(p) + 1))
        (Graph.preds graph i))
    topo;
  let cpl = ref 0 in
  for i = 0 to n - 1 do
    cpl := max !cpl (earliest.(i) + lat.(i))
  done;
  let cpl = !cpl in
  (* ALAP: latest finish such that all successors can still start in time. *)
  let latest_finish = Array.make n cpl in
  let height = Array.make n 0 in
  for k = n - 1 downto 0 do
    let i = topo.(k) in
    List.iter
      (fun s ->
        latest_finish.(i) <- min latest_finish.(i) (latest_finish.(s) - lat.(s));
        height.(i) <- max height.(i) (height.(s) + 1))
      (Graph.succs graph i)
  done;
  let latest = Array.init n (fun i -> latest_finish.(i) - lat.(i)) in
  { graph; lat; earliest; latest; depth; height; cpl; dist_cache = Hashtbl.create 16 }

let critical_instrs t =
  let acc = ref [] in
  for i = Graph.n t.graph - 1 downto 0 do
    if slack t i = 0 then acc := i :: !acc
  done;
  !acc

let critical_path t =
  let n = Graph.n t.graph in
  if n = 0 then []
  else begin
    (* Start from the zero-slack root with the smallest id. *)
    let start = List.find_opt (fun i -> slack t i = 0) (Graph.roots t.graph) in
    match start with
    | None -> []
    | Some start ->
      let rec follow i acc =
        let next =
          List.find_opt
            (fun s -> slack t s = 0 && t.earliest.(s) = t.earliest.(i) + t.lat.(i))
            (Graph.succs t.graph i)
        in
        match next with
        | None -> List.rev (i :: acc)
        | Some s -> follow s (i :: acc)
      in
      follow start []
  end

let bfs t sources =
  let n = Graph.n t.graph in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Analysis: bfs source out of range";
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    List.iter
      (fun j ->
        if dist.(j) = max_int then begin
          dist.(j) <- dist.(i) + 1;
          Queue.add j queue
        end)
      (Graph.neighbors t.graph i)
  done;
  dist

let distance_row t i =
  match Hashtbl.find_opt t.dist_cache i with
  | Some row -> row
  | None ->
    let row = bfs t [ i ] in
    Hashtbl.add t.dist_cache i row;
    row

let distance t i j = (distance_row t i).(j)

let multi_source_distance t ~sources = bfs t sources
