type t = {
  instrs : Instr.t array;
  succs : int list array;
  preds : int list array;
  n_edges : int;
  topo : int array;
  def_of : int Reg.Map.t;
  live_ins : Reg.Set.t;
}

let n t = Array.length t.instrs
let instr t i = t.instrs.(i)
let instrs t = t.instrs
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)

let neighbors t i =
  let seen = Hashtbl.create 8 in
  let keep j = if Hashtbl.mem seen j then false else (Hashtbl.add seen j (); true) in
  List.filter keep (t.preds.(i) @ t.succs.(i))

let n_edges t = t.n_edges

let roots t =
  let acc = ref [] in
  for i = n t - 1 downto 0 do
    if t.preds.(i) = [] then acc := i :: !acc
  done;
  !acc

let leaves t =
  let acc = ref [] in
  for i = n t - 1 downto 0 do
    if t.succs.(i) = [] then acc := i :: !acc
  done;
  !acc

let topo_order t = Array.copy t.topo

let defining_instr t r = Reg.Map.find_opt r t.def_of
let live_in_regs t = t.live_ins

let preplaced t =
  let acc = ref [] in
  for i = n t - 1 downto 0 do
    match t.instrs.(i).Instr.preplace with
    | None -> ()
    | Some c -> acc := (i, c) :: !acc
  done;
  !acc

let compute_topo ~count ~preds ~succs =
  let in_degree = Array.map List.length preds in
  let queue = Queue.create () in
  for i = 0 to count - 1 do
    if in_degree.(i) = 0 then Queue.add i queue
  done;
  let order = Array.make count (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!k) <- i;
    incr k;
    List.iter
      (fun j ->
        in_degree.(j) <- in_degree.(j) - 1;
        if in_degree.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !k <> count then invalid_arg "Graph.of_instrs: dependence graph has a cycle";
  order

let of_instrs instrs ~extra_edges =
  let count = Array.length instrs in
  Array.iteri
    (fun i ins ->
      if ins.Instr.id <> i then invalid_arg "Graph.of_instrs: ids must be dense and in order")
    instrs;
  (* Map each register to its unique defining instruction. *)
  let def_of =
    Array.fold_left
      (fun acc ins ->
        match ins.Instr.dst with
        | None -> acc
        | Some r ->
          if Reg.Map.mem r acc then
            invalid_arg
              (Printf.sprintf "Graph.of_instrs: register %s defined twice" (Reg.to_string r));
          Reg.Map.add r ins.Instr.id acc)
      Reg.Map.empty instrs
  in
  let live_ins = ref Reg.Set.empty in
  let succs = Array.make count [] in
  let preds = Array.make count [] in
  let edge_count = ref 0 in
  let add_edge src dst =
    if src = dst then invalid_arg "Graph.of_instrs: self edge";
    if not (List.mem dst succs.(src)) then begin
      succs.(src) <- dst :: succs.(src);
      preds.(dst) <- src :: preds.(dst);
      incr edge_count
    end
  in
  Array.iter
    (fun ins ->
      List.iter
        (fun r ->
          match Reg.Map.find_opt r def_of with
          | Some d when d <> ins.Instr.id -> add_edge d ins.Instr.id
          | Some _ -> invalid_arg "Graph.of_instrs: instruction uses its own result"
          | None -> live_ins := Reg.Set.add r !live_ins)
        ins.Instr.srcs)
    instrs;
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= count || dst < 0 || dst >= count then
        invalid_arg "Graph.of_instrs: extra edge out of range";
      add_edge src dst)
    extra_edges;
  (* Normalize adjacency to ascending order for determinism. *)
  Array.iteri (fun i l -> succs.(i) <- List.sort Int.compare l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.sort Int.compare l) preds;
  let topo = compute_topo ~count ~preds ~succs in
  { instrs; succs; preds; n_edges = !edge_count; topo; def_of; live_ins = !live_ins }

let pp fmt t =
  Format.fprintf fmt "@[<v>graph (%d nodes, %d edges)@," (n t) t.n_edges;
  Array.iter
    (fun ins ->
      Format.fprintf fmt "%s -> [%s]@," (Instr.to_string ins)
        (String.concat "," (List.map string_of_int t.succs.(ins.Instr.id))))
    t.instrs;
  Format.fprintf fmt "@]"
