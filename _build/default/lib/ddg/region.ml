type t = {
  name : string;
  graph : Graph.t;
  live_in_homes : int Reg.Map.t;
  live_outs : Reg.Set.t;
}

let make ~name ~graph ?(live_in_homes = []) ?(live_outs = []) () =
  let homes =
    List.fold_left (fun acc (r, c) -> Reg.Map.add r c acc) Reg.Map.empty live_in_homes
  in
  { name; graph; live_in_homes = homes; live_outs = Reg.Set.of_list live_outs }

let n_instrs t = Graph.n t.graph

let n_preplaced t = List.length (Graph.preplaced t.graph)

let preplacement_density t =
  let n = n_instrs t in
  if n = 0 then 0.0 else float_of_int (n_preplaced t) /. float_of_int n

let pp fmt t =
  Format.fprintf fmt "region %s: %d instrs, %d preplaced" t.name (n_instrs t) (n_preplaced t)
