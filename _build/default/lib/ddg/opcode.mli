(** Instruction opcodes of the target-neutral IR.

    The IR is deliberately small: it carries exactly the information the
    schedulers in the paper need — an operation class (which functional
    units can execute it), a latency class (supplied by the machine
    model), and whether the operation touches memory (so congruence
    analysis can preplace it). *)

type t =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Cmp
  | Load
  | Store
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fsqrt
  | Fcmp
  | Mov
  | Const
  | Select (** predicated select; models if-converted control flow *)
  | Transfer (** inter-cluster register copy; synthesized by schedulers *)
  | Recv (** network receive; synthesized on Raw *)

(** Functional-unit class of an operation. Machine models map classes to
    functional units and latencies. *)
type cls =
  | Int_op (** single-cycle integer ALU work *)
  | Mul_op (** integer multiply/divide *)
  | Mem_op (** loads and stores *)
  | Float_op (** pipelined floating point *)
  | Fdiv_op (** long-latency unpipelined floating point *)
  | Move_op (** register moves and constants *)
  | Comm_op (** communication, synthesized by the scheduler *)

val cls : t -> cls

val is_memory : t -> bool
(** [Load] and [Store] only. *)

val writes_register : t -> bool
(** False for [Store] (and nothing else in this IR). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list
(** Every opcode, for exhaustive tests. *)
