(** A scheduling region (basic block, trace, superblock...): the unit on
    which the convergent scheduler and all baselines operate.

    Live-in registers may carry a *home cluster*: the paper requires that
    values live across scheduling regions are produced/consumed on a
    consistent cluster; consumers of a homed live-in become effectively
    anchored (see PLACE/FIRST passes). *)

type t = {
  name : string;
  graph : Graph.t;
  live_in_homes : int Reg.Map.t;
  (** home cluster for live-in registers that have one *)
  live_outs : Reg.Set.t;
}

val make :
  name:string -> graph:Graph.t -> ?live_in_homes:(Reg.t * int) list ->
  ?live_outs:Reg.t list -> unit -> t

val n_instrs : t -> int
val n_preplaced : t -> int

val preplacement_density : t -> float
(** Fraction of instructions that are preplaced — used in experiment
    reporting: the paper's dense-matrix benchmarks have high density,
    [fpppp-kernel]/[sha] nearly none. *)

val pp : Format.formatter -> t -> unit
