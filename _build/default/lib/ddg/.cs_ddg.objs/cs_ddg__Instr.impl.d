lib/ddg/instr.ml: Format List Opcode Printf Reg String
