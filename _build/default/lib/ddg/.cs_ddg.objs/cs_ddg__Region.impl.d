lib/ddg/region.ml: Format Graph List Reg
