lib/ddg/analysis.ml: Array Graph Hashtbl List Queue
