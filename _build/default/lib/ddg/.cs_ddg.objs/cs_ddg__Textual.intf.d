lib/ddg/textual.mli: Region
