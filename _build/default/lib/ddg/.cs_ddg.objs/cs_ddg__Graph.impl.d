lib/ddg/graph.ml: Array Format Hashtbl Instr Int List Printf Queue Reg String
