lib/ddg/builder.ml: Array Graph Instr List Opcode Reg Region
