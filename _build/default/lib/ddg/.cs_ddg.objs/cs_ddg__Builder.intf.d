lib/ddg/builder.mli: Opcode Reg Region
