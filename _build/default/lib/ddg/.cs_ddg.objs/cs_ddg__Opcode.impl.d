lib/ddg/opcode.ml: Format
