lib/ddg/analysis.mli: Graph Instr
