lib/ddg/dot.ml: Array Buffer Fun Graph Instr List Opcode Printf
