lib/ddg/reg.ml: Format Int Map Set
