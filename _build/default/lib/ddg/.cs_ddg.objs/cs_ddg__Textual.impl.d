lib/ddg/textual.ml: Array Buffer Builder Fun Graph Hashtbl In_channel Instr List Opcode Printf Reg Region String
