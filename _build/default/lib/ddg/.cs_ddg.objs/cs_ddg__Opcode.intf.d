lib/ddg/opcode.mli: Format
