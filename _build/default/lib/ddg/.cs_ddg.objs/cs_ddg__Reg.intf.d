lib/ddg/reg.mli: Format Map Set
