lib/ddg/dot.mli: Graph
