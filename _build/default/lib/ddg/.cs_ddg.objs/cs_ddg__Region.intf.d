lib/ddg/region.mli: Format Graph Reg
