lib/ddg/graph.mli: Format Instr Reg
