lib/ddg/instr.mli: Format Opcode Reg
