(** Imperative construction of scheduling regions.

    The workload generators express kernels as straight-line SSA code:

    {[
      let b = Builder.create ~name:"dot" () in
      let x = Builder.load b ~addr_bank:0 in
      let y = Builder.load b ~addr_bank:1 in
      let p = Builder.op2 b Opcode.Fmul x y in
      ignore (Builder.store b ~addr_bank:0 p);
      let region = Builder.finish b
    ]} *)

type t

val create : name:string -> unit -> t

val fresh_reg : t -> Reg.t
(** A fresh virtual register with no definition yet; only useful as a
    live-in (see [live_in]). *)

val live_in : ?home:int -> t -> Reg.t
(** A region live-in value, optionally homed on a cluster. *)

val emit :
  t -> ?preplace:int -> ?tag:string -> Opcode.t -> ?dst:bool -> Reg.t list -> Reg.t option
(** Low-level emission. [dst] defaults to [Opcode.writes_register op];
    returns the destination register if one is allocated. *)

val op0 : t -> ?preplace:int -> ?tag:string -> Opcode.t -> Reg.t
(** Nullary value producer ([Const]). *)

val op1 : t -> ?preplace:int -> ?tag:string -> Opcode.t -> Reg.t -> Reg.t
val op2 : t -> ?preplace:int -> ?tag:string -> Opcode.t -> Reg.t -> Reg.t -> Reg.t
val op3 : t -> ?preplace:int -> ?tag:string -> Opcode.t -> Reg.t -> Reg.t -> Reg.t -> Reg.t

val load : t -> ?preplace:int -> ?tag:string -> Reg.t -> Reg.t
(** [load b addr]. *)

val store : t -> ?preplace:int -> ?tag:string -> addr:Reg.t -> Reg.t -> unit

val mem_fence_edge : t -> int -> int -> unit
(** Explicit ordering edge between two instruction ids (memory
    dependence). *)

val last_id : t -> int
(** Id of the most recently emitted instruction. *)

val mark_live_out : t -> Reg.t -> unit

val finish : t -> Region.t
(** Build and validate the region. *)
