(** Static analyses over a dependence graph, parameterized by the
    machine's latency model. These supply every quantity the paper's
    passes consume: ASAP/ALAP slots (INITTIME), critical paths (PATH),
    levels (LEVEL, EMPHCP), and undirected graph distances (PLACEPROP,
    LEVEL's bin distances). *)

type t

val make : latency:(Instr.t -> int) -> Graph.t -> t
(** Latencies must be >= 1 for every instruction. *)

val graph : t -> Graph.t
val latency : t -> int -> int

val earliest : t -> int -> int
(** ASAP start cycle (the paper's [lp], longest predecessor chain). *)

val latest : t -> int -> int
(** ALAP start cycle such that the critical-path length is met (the
    paper's [CPL - ls]). *)

val slack : t -> int -> int
(** [latest - earliest]; 0 on critical instructions. *)

val cpl : t -> int
(** Critical-path length in cycles: the makespan on an idealized machine
    with infinite resources and free communication. *)

val depth : t -> int -> int
(** Edge-count distance from the furthest root (the paper's
    [level(i)]). *)

val height : t -> int -> int
(** Edge-count distance to the furthest leaf. *)

val max_depth : t -> int

val critical_instrs : t -> int list
(** All instructions with zero slack, ascending. *)

val critical_path : t -> int list
(** One maximal root-to-leaf path of zero-slack instructions, in
    dependence order (deterministic: smallest ids win ties). *)

val distance_row : t -> int -> int array
(** [distance_row t i] is the undirected BFS distance (in edges) from
    [i] to every node; [max_int] when unreachable. Rows are memoized. *)

val distance : t -> int -> int -> int

val multi_source_distance : t -> sources:int list -> int array
(** Undirected BFS from a set of sources; [max_int] when unreachable or
    when [sources] is empty. *)
