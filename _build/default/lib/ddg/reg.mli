(** Virtual registers. The IR is in SSA form inside a scheduling region:
    each register has exactly one definition (an instruction or a
    region live-in). *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
