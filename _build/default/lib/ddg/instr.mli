(** Instructions of a scheduling region.

    [preplace] is the paper's *preplaced instruction* constraint: a
    cluster/tile on which the instruction must execute, arising either
    from congruence analysis of memory references or from values live
    across scheduling regions (Sec. 1 and 5 of the paper). *)

type t = {
  id : int; (** dense index within the region, [0 .. n-1] *)
  op : Opcode.t;
  dst : Reg.t option; (** [None] for stores *)
  srcs : Reg.t list;
  preplace : int option; (** home cluster, if the instruction is preplaced *)
  tag : string; (** free-form label for printing and debugging *)
}

val make :
  id:int -> op:Opcode.t -> dst:Reg.t option -> srcs:Reg.t list ->
  ?preplace:int -> ?tag:string -> unit -> t

val is_preplaced : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
