let palette =
  [| "lightblue"; "lightsalmon"; "palegreen"; "plum"; "khaki"; "lightcyan";
     "mistyrose"; "lavender"; "wheat"; "honeydew"; "thistle"; "azure";
     "beige"; "cornsilk"; "gainsboro"; "seashell" |]

let color_of_cluster c = palette.(c mod Array.length palette)

let to_string ?assignment graph =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph ddg {\n  node [style=filled];\n";
  Array.iter
    (fun ins ->
      let i = ins.Instr.id in
      let shape = if Instr.is_preplaced ins then "triangle" else "ellipse" in
      let color =
        match (ins.Instr.preplace, assignment) with
        | Some c, _ -> color_of_cluster c
        | None, Some a when i < Array.length a -> color_of_cluster a.(i)
        | None, _ -> "white"
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%d:%s\", shape=%s, fillcolor=%s];\n" i i
           (Opcode.to_string ins.Instr.op) shape color))
    (Graph.instrs graph);
  for i = 0 to Graph.n graph - 1 do
    List.iter
      (fun j -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" i j))
      (Graph.succs graph i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?assignment ~path graph =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?assignment graph))
