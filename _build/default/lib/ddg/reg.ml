type t = int

let compare = Int.compare
let equal = Int.equal
let to_string r = "r" ^ string_of_int r
let pp fmt r = Format.pp_print_string fmt (to_string r)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
