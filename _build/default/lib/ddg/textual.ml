let opcode_of_string s =
  List.find_opt (fun op -> Opcode.to_string op = String.lowercase_ascii s) Opcode.all

let reg_of_string s =
  if String.length s >= 2 && s.[0] = 'r' then
    int_of_string_opt (String.sub s 1 (String.length s - 1))
  else None

(* Live-ins with their optional homes, in ascending register order. *)
let emit_live_ins region buf =
  Reg.Set.iter
    (fun r ->
      match Reg.Map.find_opt r region.Region.live_in_homes with
      | Some home -> Printf.bprintf buf "livein %s @%d\n" (Reg.to_string r) home
      | None -> Printf.bprintf buf "livein %s\n" (Reg.to_string r))
    (Graph.live_in_regs region.Region.graph)

let to_string region =
  let graph = region.Region.graph in
  let buf = Buffer.create 512 in
  Printf.bprintf buf "region %s\n" region.Region.name;
  emit_live_ins region buf;
  Array.iter
    (fun ins ->
      let dst = match ins.Instr.dst with Some r -> Reg.to_string r | None -> "-" in
      Printf.bprintf buf "%s %s" (Opcode.to_string ins.Instr.op) dst;
      if ins.Instr.srcs <> [] then
        Printf.bprintf buf " <- %s" (String.concat " " (List.map Reg.to_string ins.Instr.srcs));
      (match ins.Instr.preplace with Some c -> Printf.bprintf buf " @%d" c | None -> ());
      if ins.Instr.tag <> "" then Printf.bprintf buf " # %s" ins.Instr.tag;
      Buffer.add_char buf '\n')
    (Graph.instrs graph);
  (* Ordering edges that are not explained by register dataflow. *)
  let dataflow_edge src dst =
    let consumer = Graph.instr graph dst in
    List.exists
      (fun r -> Graph.defining_instr graph r = Some src)
      consumer.Instr.srcs
  in
  for i = 0 to Graph.n graph - 1 do
    List.iter
      (fun j -> if not (dataflow_edge i j) then Printf.bprintf buf "edge %d %d\n" i j)
      (Graph.succs graph i)
  done;
  Reg.Set.iter
    (fun r -> Printf.bprintf buf "liveout %s\n" (Reg.to_string r))
    region.Region.live_outs;
  Buffer.contents buf

let of_string text =
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lines = String.split_on_char '\n' text in
  (* Strip comments that occupy the end of the line after '#' only when
     preceded by whitespace, keeping instruction tags intact is not
     needed on input: '#' starts the tag. *)
  let name = ref "region" in
  let b = ref None in
  let get_builder () =
    match !b with
    | Some builder -> builder
    | None ->
      let builder = Builder.create ~name:!name () in
      b := Some builder;
      builder
  in
  (* Registers in the file are renamed to builder registers. *)
  let reg_map = Hashtbl.create 32 in
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  let resolve_use file_reg =
    match Hashtbl.find_opt reg_map file_reg with
    | Some r -> r
    | None ->
      (* Read before definition: implicit (un-homed) live-in. *)
      let r = Builder.live_in (get_builder ()) in
      Hashtbl.replace reg_map file_reg r;
      r
  in
  let parse_home tok =
    if String.length tok > 1 && tok.[0] = '@' then
      int_of_string_opt (String.sub tok 1 (String.length tok - 1))
    else None
  in
  let pending_live_outs = ref [] in
  List.iteri
    (fun lineno line ->
      if !problem = None then begin
        let line =
          match String.index_opt line '#' with
          | Some k when k = 0 -> ""
          | _ -> line
        in
        let tag =
          match String.index_opt line '#' with
          | Some k -> String.trim (String.sub line (k + 1) (String.length line - k - 1))
          | None -> ""
        in
        let code =
          match String.index_opt line '#' with
          | Some k -> String.sub line 0 k
          | None -> line
        in
        let tokens =
          String.split_on_char ' ' (String.trim code) |> List.filter (fun t -> t <> "")
        in
        match tokens with
        | [] -> ()
        | [ "region"; n ] -> name := n
        | "livein" :: r :: rest ->
          (match reg_of_string r with
          | None -> fail "line %d: bad register %S" (lineno + 1) r
          | Some file_reg ->
            let home = match rest with [ h ] -> parse_home h | _ -> None in
            let reg = Builder.live_in ?home (get_builder ()) in
            Hashtbl.replace reg_map file_reg reg)
        | [ "liveout"; r ] ->
          (match reg_of_string r with
          | None -> fail "line %d: bad register %S" (lineno + 1) r
          | Some file_reg -> pending_live_outs := (lineno + 1, file_reg) :: !pending_live_outs)
        | [ "edge"; a; b' ] ->
          (match (int_of_string_opt a, int_of_string_opt b') with
          | Some src, Some dst -> Builder.mem_fence_edge (get_builder ()) src dst
          | _ -> fail "line %d: bad edge" (lineno + 1))
        | opcode :: dst :: rest ->
          (match opcode_of_string opcode with
          | None -> fail "line %d: unknown opcode %S" (lineno + 1) opcode
          | Some op ->
            let srcs_toks, home =
              match rest with
              | "<-" :: more ->
                let home = List.find_map parse_home more in
                (List.filter (fun t -> parse_home t = None) more, home)
              | more -> ([], List.find_map parse_home more)
            in
            let srcs = List.filter_map reg_of_string srcs_toks in
            if List.length srcs <> List.length srcs_toks then
              fail "line %d: bad source register" (lineno + 1)
            else begin
              let builder = get_builder () in
              let wants_dst = dst <> "-" in
              if wants_dst && reg_of_string dst = None then
                fail "line %d: bad destination %S" (lineno + 1) dst
              else begin
                let result =
                  Builder.emit builder ?preplace:home ~tag op ~dst:wants_dst
                    (List.map resolve_use srcs)
                in
                match (wants_dst, result, reg_of_string dst) with
                | true, Some r, Some file_reg -> Hashtbl.replace reg_map file_reg r
                | true, None, _ -> fail "line %d: opcode produces no value" (lineno + 1)
                | _ -> ()
              end
            end)
        | _ -> fail "line %d: cannot parse" (lineno + 1)
      end)
    lines;
  match !problem with
  | Some msg -> Error msg
  | None ->
    let builder = get_builder () in
    List.iter
      (fun (lineno, file_reg) ->
        match Hashtbl.find_opt reg_map file_reg with
        | Some r -> Builder.mark_live_out builder r
        | None -> if !problem = None then problem := Some (Printf.sprintf "line %d: liveout of unknown register" lineno))
      (List.rev !pending_live_outs);
    (match !problem with
    | Some msg -> Error msg
    | None -> (
      try Ok (Builder.finish builder) with Invalid_argument msg -> error "%s" msg))

let load_file path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  with Sys_error msg -> Error msg
