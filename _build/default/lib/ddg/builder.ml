type t = {
  name : string;
  mutable next_reg : Reg.t;
  mutable rev_instrs : Instr.t list;
  mutable n_instrs : int;
  mutable live_in_homes : (Reg.t * int) list;
  mutable live_ins : Reg.Set.t;
  mutable live_outs : Reg.t list;
  mutable extra_edges : (int * int) list;
}

let create ~name () =
  { name; next_reg = 0; rev_instrs = []; n_instrs = 0; live_in_homes = [];
    live_ins = Reg.Set.empty; live_outs = []; extra_edges = [] }

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let live_in ?home t =
  let r = fresh_reg t in
  t.live_ins <- Reg.Set.add r t.live_ins;
  (match home with None -> () | Some c -> t.live_in_homes <- (r, c) :: t.live_in_homes);
  r

let emit t ?preplace ?tag op ?dst srcs =
  let wants_dst = match dst with Some b -> b | None -> Opcode.writes_register op in
  let dst = if wants_dst then Some (fresh_reg t) else None in
  let id = t.n_instrs in
  let ins = Instr.make ~id ~op ~dst ~srcs ?preplace ?tag () in
  t.rev_instrs <- ins :: t.rev_instrs;
  t.n_instrs <- id + 1;
  dst

let require = function
  | Some r -> r
  | None -> invalid_arg "Builder: opcode does not produce a value"

let op0 t ?preplace ?tag op = require (emit t ?preplace ?tag op [])
let op1 t ?preplace ?tag op a = require (emit t ?preplace ?tag op [ a ])
let op2 t ?preplace ?tag op a b = require (emit t ?preplace ?tag op [ a; b ])
let op3 t ?preplace ?tag op a b c = require (emit t ?preplace ?tag op [ a; b; c ])

let load t ?preplace ?tag addr = require (emit t ?preplace ?tag Opcode.Load [ addr ])

let store t ?preplace ?tag ~addr value =
  ignore (emit t ?preplace ?tag Opcode.Store [ addr; value ])

let mem_fence_edge t src dst = t.extra_edges <- (src, dst) :: t.extra_edges

let last_id t =
  if t.n_instrs = 0 then invalid_arg "Builder.last_id: no instructions";
  t.n_instrs - 1

let mark_live_out t r = t.live_outs <- r :: t.live_outs

let finish t =
  let instrs = Array.of_list (List.rev t.rev_instrs) in
  let graph = Graph.of_instrs instrs ~extra_edges:t.extra_edges in
  Region.make ~name:t.name ~graph ~live_in_homes:t.live_in_homes ~live_outs:t.live_outs ()
