type t = {
  id : int;
  op : Opcode.t;
  dst : Reg.t option;
  srcs : Reg.t list;
  preplace : int option;
  tag : string;
}

let make ~id ~op ~dst ~srcs ?preplace ?(tag = "") () =
  { id; op; dst; srcs; preplace; tag }

let is_preplaced t = t.preplace <> None

let to_string t =
  let dst = match t.dst with None -> "-" | Some r -> Reg.to_string r in
  let srcs = String.concat ", " (List.map Reg.to_string t.srcs) in
  let pre = match t.preplace with None -> "" | Some c -> Printf.sprintf " @%d" c in
  let tag = if t.tag = "" then "" else Printf.sprintf " (%s)" t.tag in
  Printf.sprintf "i%d: %s %s <- [%s]%s%s" t.id (Opcode.to_string t.op) dst srcs pre tag

let pp fmt t = Format.pp_print_string fmt (to_string t)
