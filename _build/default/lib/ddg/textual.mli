(** A plain-text format for scheduling regions, so graphs can be fed to
    the [csched] CLI without writing OCaml:

    {v
    region dot2
    livein r10 @0          # live-in, homed on cluster 0
    const r0
    load r1 <- r0 @2       # preplaced on cluster 2
    fmul r2 <- r1 r10
    store - <- r0 r2 @2
    edge 1 4               # explicit ordering edge (memory dependence)
    liveout r2
    v}

    One instruction per line in program order; [-] marks no destination;
    [@n] is a preplacement (or live-in home); [# ...] is a comment or
    instruction tag. *)

val to_string : Region.t -> string
(** Round-trips through {!of_string}. *)

val of_string : string -> (Region.t, string) result

val load_file : string -> (Region.t, string) result
