lib/util/table.mli:
