lib/util/rng.mli:
