lib/util/stats.mli:
