lib/util/bitset.mli:
