lib/util/heap.mli:
