(** ASCII table rendering for the benchmark harness: the bench binary
    prints each paper table/figure as rows of a fixed-width table. *)

type t

val create : header:string list -> t
(** Column titles. *)

val add_row : t -> string list -> unit
(** Rows may be ragged; missing cells render empty. *)

val add_separator : t -> unit

val render : t -> string
(** Render with column widths fitted to contents. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point cell formatting (default 2 decimals). *)

val bar : width:int -> max_value:float -> float -> string
(** Horizontal ASCII bar proportional to [value /. max_value] — used to
    render the paper's bar charts (Figs. 6, 8) in a terminal. *)
