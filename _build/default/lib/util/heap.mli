(** Mutable binary min-heap with a user-supplied ordering.

    Used by the list schedulers for ready queues keyed by priority. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] makes an empty heap; the minimum element under [cmp]
    is popped first. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val peek : 'a t -> 'a option

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drains the heap; ascending order. *)
