type row = Cells of string list | Separator

type t = {
  header : string list;
  mutable rows : row list; (* reverse order *)
}

let create ~header = { header; rows = [] }
let add_row t cells = t.rows <- Cells cells :: t.rows
let add_separator t = t.rows <- Separator :: t.rows

let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.header :: List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all_cell_rows in
  let widths = Array.make (max n_cols 1) 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter measure all_cell_rows;
  let buf = Buffer.create 1024 in
  let pad s w =
    let n = String.length s in
    if n >= w then s else s ^ String.make (w - n) ' '
  in
  let emit_cells cells =
    let cells = Array.of_list cells in
    for i = 0 to n_cols - 1 do
      let c = if i < Array.length cells then cells.(i) else "" in
      Buffer.add_string buf (pad c widths.(i));
      if i < n_cols - 1 then Buffer.add_string buf "  "
    done;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (max n_cols 1 - 1))
  in
  let rule () = Buffer.add_string buf (String.make total_width '-'); Buffer.add_char buf '\n' in
  emit_cells t.header;
  rule ();
  List.iter (function Cells c -> emit_cells c | Separator -> rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let bar ~width ~max_value value =
  if max_value <= 0.0 then ""
  else begin
    let n = int_of_float (Float.round (float_of_int width *. value /. max_value)) in
    let n = max 0 (min width n) in
    String.make n '#'
  end
