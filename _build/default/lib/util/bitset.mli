(** Dense fixed-capacity bitsets over integer keys. *)

type t

val create : int -> t
(** [create n] supports members in [\[0, n)], all initially absent. *)

val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val clear : t -> unit
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
(** Ascending order. *)
