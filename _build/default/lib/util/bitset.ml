type t = {
  bits : Bytes.t;
  n : int;
  mutable count : int;
}

let create n = { bits = Bytes.make ((n / 8) + 1 ) '\000'; n; count = 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let add t i =
  check t i;
  if not (mem t i) then begin
    let byte = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (byte lor (1 lsl (i mod 8))));
    t.count <- t.count + 1
  end

let remove t i =
  check t i;
  if mem t i then begin
    let byte = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (byte land lnot (1 lsl (i mod 8)) land 0xff));
    t.count <- t.count - 1
  end

let cardinal t = t.count

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.count <- 0

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
