(** Union-find over dense integer keys, with union by rank and path
    compression. Used by the Rawcc-style clustering baseline. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> int
(** Merges the two sets; returns the representative of the result. *)

val same : t -> int -> int -> bool
val n_sets : t -> int

val groups : t -> (int, int list) Hashtbl.t
(** Representative -> members (each list in ascending order). *)
