type t = {
  parent : int array;
  rank : int array;
  mutable count : int;
}

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    t.count <- t.count - 1;
    if t.rank.(ra) < t.rank.(rb) then begin
      t.parent.(ra) <- rb;
      rb
    end
    else if t.rank.(ra) > t.rank.(rb) then begin
      t.parent.(rb) <- ra;
      ra
    end
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1;
      ra
    end
  end

let same t a b = find t a = find t b
let n_sets t = t.count

let groups t =
  let tbl = Hashtbl.create 16 in
  for i = Array.length t.parent - 1 downto 0 do
    let r = find t i in
    let existing = match Hashtbl.find_opt tbl r with None -> [] | Some l -> l in
    Hashtbl.replace tbl r (i :: existing)
  done;
  tbl
