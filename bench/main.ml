(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 5), plus extension experiments.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table2     # one experiment
     dune exec bench/main.exe -- --list  # what's available

   Experiments print the same rows/series the paper reports; expected
   qualitative shapes are noted inline and tracked in EXPERIMENTS.md. *)

let experiments =
  [
    ("table2", "Rawcc vs convergent speedup, 2-16 Raw tiles", Exp_raw.table2);
    ("fig6", "16-tile speedups as a bar chart", Exp_raw.fig6);
    ("fig7", "convergence of spatial assignments on Raw", Exp_raw.fig7);
    ("fig8", "PCC vs UAS vs convergent on the 4-cluster VLIW", Exp_vliw.fig8);
    ("fig9", "convergence of spatial assignments on Chorus", Exp_vliw.fig9);
    ("fig10", "compile time vs input size", Exp_compile_time.fig10);
    ("ablation", "per-pass ablation (extension)", Exp_ablation.ablation);
    ("cluster", "CLUSTER pass integration, the paper's future work", Exp_ablation.cluster_integration);
    ("regalloc", "REGPRESS pass vs spills (extension)", Exp_ablation.regalloc);
    ("multiblock", "values live across scheduling regions (extension)", Exp_ablation.multiblock);
    ("baselines", "all schedulers on both machines (extension)", Exp_extra.baselines);
    ("scaling", "convergent scaling to 64 tiles (extension)", Exp_extra.scaling);
    ("iterate", "iterated convergence (extension)", Exp_extra.iterate);
    ("regions", "scheduling-unit formation comparison (extension)", Exp_regions.regions);
    ("tune", "evolutionary pass-sequence autotuner vs Table 1 (extension)", Exp_tune.tune);
    ("fuzz", "differential fuzzing throughput (extension)", Exp_fuzz.fuzz);
    ("faults", "fault injection and graceful degradation (extension)", Exp_resil.faults);
    ("slo", "latency SLO under per-job deadlines (extension)", Exp_slo.slo);
    ("gateway", "sharded gateway: result cache + failover (extension)", Exp_gateway.gateway);
    ("obs", "observability: sink + metrics throughput, telemetry overhead (extension)", Exp_obs.obs);
    ("micro", "bechamel micro-benchmarks", Exp_micro.micro);
    ("kernels", "flat vs legacy weight-matrix kernels, rows/sec per pass (extension)", Exp_kernels.kernels);
    ("serve", "overload: work-stealing lanes, fair admission, brownout (extension)", Exp_serve.serve);
  ]

let print_sequences () =
  Report.section "Table 1: pass sequences used by the convergent scheduler";
  Printf.printf "(a) Raw:  %s\n"
    (String.concat " " (Cs_core.Sequence.names (Cs_core.Sequence.raw_default ())));
  Printf.printf "(b) VLIW: %s\n"
    (String.concat " " (Cs_core.Sequence.names (Cs_core.Sequence.vliw_default ())))

let run_all () =
  print_sequences ();
  List.iter (fun (_, _, f) -> f ()) experiments

let () =
  match Array.to_list Sys.argv with
  | [] | [ _ ] -> run_all ()
  | [ _; "--list" ] ->
    List.iter (fun (name, doc, _) -> Printf.printf "%-10s %s\n" name doc) experiments
  | _ :: names ->
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, _, f) -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; try --list\n" name;
          exit 1)
      names
