(* Graceful-degradation experiment (extension): how much schedule
   quality survives hardware faults. For each evaluation machine we
   sweep a grid of fault plans (dead tiles, dead links, dead functional
   units, slow links), re-scheduling every benchmark of the machine's
   suite through the resilient fallback chain, and report the geomean
   slowdown versus the healthy machine plus which rung won. Benchmarks
   whose preplaced memory banks land on a dead tile are genuinely
   infeasible (the data is gone); they are reported as refusals, not
   failures. *)

let raw_plans =
  [ "tile=5"; "link=1-2"; "slow-link=4-8:x3"; "fu=0:0"; "tile=0,tile=15";
    "link=0-1,link=4-5"; "slow-link=0-4:x2,slow-link=1-5:x4";
    "tile=5,link=9-10,slow-link=2-6:x3" ]

let vliw_plans =
  [ "tile=1"; "fu=0:3"; "fu=0:0,fu=0:1"; "tile=2,tile=3"; "fu=1:2"; "tile=0,fu=1:3";
    "fu=3:0,fu=3:1,fu=3:2,fu=3:3"; "tile=1,tile=2" ]

let rung_tag = function
  | Cs_resil.Outcome.Requested -> "req"
  | Cs_resil.Outcome.Default_sequence -> "def"
  | Cs_resil.Outcome.Single_cluster -> "1cl"

let sweep ~machine ~suite plans =
  Report.subsection
    (Printf.sprintf "%s (%d benchmarks)" machine.Cs_machine.Machine.name
       (List.length suite));
  let healthy =
    List.map
      (fun entry ->
        let region =
          entry.Cs_workloads.Suite.generate ~scale:1
            ~clusters:(Cs_machine.Machine.n_clusters machine) ()
        in
        let sched =
          Cs_sim.Pipeline.schedule ~scheduler:Cs_sim.Pipeline.Convergent ~machine region
        in
        (entry, region, Cs_sched.Schedule.makespan sched))
      suite
  in
  let table =
    Cs_util.Table.create
      ~header:[ "plan"; "scheduled"; "refused"; "geomean slowdown"; "rungs" ]
  in
  List.iter
    (fun spec ->
      let plan =
        match Cs_resil.Fault.parse spec with
        | Ok p -> p
        | Error msg -> failwith (spec ^ ": " ^ msg)
      in
      let degraded = Cs_machine.Machine.degrade machine plan in
      let rungs = Hashtbl.create 4 in
      let ratios, refused =
        List.fold_left
          (fun (ratios, refused) (_, region, healthy_cycles) ->
            match
              Cs_sim.Pipeline.schedule_resilient ~machine:degraded region
            with
            | Ok (sched, outcome) ->
              let tag = rung_tag outcome.Cs_resil.Outcome.rung in
              Hashtbl.replace rungs tag
                (1 + Option.value ~default:0 (Hashtbl.find_opt rungs tag));
              ( (float_of_int (Cs_sched.Schedule.makespan sched)
                /. float_of_int healthy_cycles)
                :: ratios,
                refused )
            | Error _ -> (ratios, refused + 1))
          ([], 0) healthy
      in
      let rung_summary =
        String.concat " "
          (List.filter_map
             (fun tag ->
               Option.map
                 (fun n -> Printf.sprintf "%s:%d" tag n)
                 (Hashtbl.find_opt rungs tag))
             [ "req"; "def"; "1cl" ])
      in
      Cs_util.Table.add_row table
        [ spec;
          string_of_int (List.length ratios);
          string_of_int refused;
          (if ratios = [] then "-"
           else Printf.sprintf "%.2fx" (Cs_util.Stats.geomean ratios));
          rung_summary ])
    plans;
  Cs_util.Table.print table

let faults () =
  Report.section "Extension: fault injection and graceful degradation (cs_resil)";
  sweep
    ~machine:(Cs_machine.Raw.with_tiles 16)
    ~suite:Cs_workloads.Suite.raw_suite raw_plans;
  sweep
    ~machine:(Cs_machine.Vliw.create ~n_clusters:4 ())
    ~suite:Cs_workloads.Suite.vliw_suite vliw_plans;
  Printf.printf
    "expectation: slow links cost a few percent, dead links reroute for ~1.0-1.3x,\n\
     dead tiles/FUs refuse only preplaced-bank benchmarks; single-cluster rungs\n\
     appear when a dead transfer unit cuts a cluster off\n"
