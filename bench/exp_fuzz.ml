(* Fuzzing-throughput experiment (extension): how many differential
   cases per second the cs_check oracle sustains, per worker-domain
   count, and what the generated scenario mix looks like. The oracle is
   also re-asserted clean over the swept seeds, so `bench fuzz` doubles
   as a slow smoke test of the tree. *)

let seeds = (0, 400)

let mix () =
  let shapes = Hashtbl.create 8 and machines = Hashtbl.create 8 in
  let lo, hi = seeds in
  for seed = lo to hi do
    let s = Cs_check.Gen.case ~seed in
    let bump tbl key =
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
    in
    bump shapes s.Cs_check.Scenario.label;
    bump machines (Cs_check.Scenario.machine_name s.Cs_check.Scenario.machine)
  done;
  let dump title tbl =
    let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    let rows = List.sort (fun (_, a) (_, b) -> compare b a) rows in
    Printf.printf "%s: %s\n" title
      (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) rows))
  in
  dump "shape mix" shapes;
  dump "machine mix" machines

let fuzz () =
  Report.section "Extension: differential fuzzing throughput (cs_check)";
  mix ();
  let table =
    Cs_util.Table.create ~header:[ "domains"; "cases"; "violations"; "s"; "cases/s" ]
  in
  List.iter
    (fun domains ->
      let stats, _ = Cs_check.Fuzz.run ~domains ~shrink:false ~seeds () in
      Cs_util.Table.add_row table
        [ string_of_int domains;
          string_of_int stats.Cs_check.Fuzz.cases;
          string_of_int stats.Cs_check.Fuzz.violations;
          Cs_util.Table.cell_float stats.Cs_check.Fuzz.elapsed_s;
          Cs_util.Table.cell_float
            (float_of_int stats.Cs_check.Fuzz.cases
            /. Float.max 1e-9 stats.Cs_check.Fuzz.elapsed_s) ])
    [ 1; 2; 4 ];
  Cs_util.Table.print table;
  Printf.printf
    "expectation: zero violations at HEAD; cases/s scales with domains up to the core count\n"
