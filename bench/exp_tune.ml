(* Autotuner experiment (extension): evolve pass sequences for both
   target machines and record the evolved-vs-default margin — the
   automated version of the paper's Sec. 4 trial-and-error that produced
   Table 1. Small fixed budget so the bench run stays quick; see
   `csched tune` for real searches. *)

let budget ~generations =
  { Cs_tuner.Ga.default_params with population = 8; generations; seed = 42; domains = 1 }

let tune_machine ~name ~machine ~suite ~generations =
  Report.subsection (Printf.sprintf "%s (pop 8 x %d generations, seed 42)" name generations);
  let fit = Cs_tuner.Fitness.make ~machine suite in
  let t0 = Unix.gettimeofday () in
  let outcome = Cs_tuner.Ga.run (budget ~generations) fit in
  let elapsed = Unix.gettimeofday () -. t0 in
  let open Cs_tuner.Ga in
  let table =
    Cs_util.Table.create ~header:[ "sequence"; "geomean speedup"; "vs default" ]
  in
  let seq_names g =
    match Cs_tuner.Genome.to_passes g with
    | Ok p -> String.concat "," (Cs_core.Sequence.names p)
    | Error msg -> "<error: " ^ msg ^ ">"
  in
  Cs_util.Table.add_row table
    [ "Table 1 default"; Report.fl outcome.default_fitness; "--" ];
  Cs_util.Table.add_row table
    [ "evolved"; Report.fl outcome.best_fitness;
      Printf.sprintf "%+.1f%%"
        ((outcome.best_fitness /. outcome.default_fitness -. 1.0) *. 100.0) ];
  Cs_util.Table.print table;
  Printf.printf "evolved: %s\n" (seq_names outcome.best);
  Printf.printf "%d candidates simulated, %d cache hits, %.1fs\n" outcome.evaluations
    outcome.cache_hits elapsed

let tune () =
  Report.section
    "Autotuner: evolved pass sequences vs Table 1 (paper Sec. 4's trial-and-error, automated)";
  tune_machine ~name:"VLIW (4 clusters), Fig. 8 suite"
    ~machine:(Cs_machine.Vliw.create ~n_clusters:4 ())
    ~suite:Cs_workloads.Suite.vliw_suite ~generations:4;
  tune_machine ~name:"Raw (16 tiles), Table 2 suite"
    ~machine:(Cs_machine.Raw.with_tiles 16)
    ~suite:Cs_workloads.Suite.raw_suite ~generations:3
