(* Weight-matrix kernel micro-benchmark: rows/sec per convergent pass,
   legacy (boxed float array, per-element chain, full-blit snapshot +
   normalize_all per pass) vs flat (contiguous Bigarray, fused kernels,
   dirty-row normalize + row-sync snapshot).

   Each side is measured doing the *whole* per-pass protocol its driver
   generation used, so the numbers reflect end-to-end pass cost, not
   just the inner loop:

     legacy:  blit w->snapshot; apply; normalize_all; validate
     flat:    clear_touched; apply; normalize_touched;
              validate_touched; sync_rows touched w->snapshot

   Machine-readable output lands in BENCH_kernels.json; CI runs this
   experiment and fails the build if the aggregate (geomean) speedup is
   not > 1, i.e. if the flat kernels ever stop being faster than the
   legacy path they replace. *)

open Cs_core

let target_speedup = 5.0
let min_sample_s = 0.05

let time_reps f =
  (* Calibrate once, then take the best of three samples of [reps]
     calls each — the minimum is the usual low-noise estimator on a
     shared machine. *)
  let t0 = Cs_obs.Clock.now () in
  f ();
  let once = Cs_obs.Clock.since t0 in
  let reps =
    if once <= 0.0 then 400 else max 1 (min 400 (int_of_float (min_sample_s /. once)))
  in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t1 = Cs_obs.Clock.now () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Cs_obs.Clock.since t1 in
    if dt < !best then best := dt
  done;
  (reps, !best)

(* Rows/sec for one pass under one implementation, doing that driver
   generation's whole per-pass protocol. *)
let bench_pass impl ctx passes pass =
  let n = Context.n_instrs ctx in
  let w =
    Weights.create_with ~impl ~n ~nc:(Context.n_clusters ctx) ~nt:ctx.Context.nt
  in
  let snapshot = Weights.copy w in
  (* Settle into a realistic mid-convergence matrix: one full sequence
     application, normalized. *)
  List.iter
    (fun p ->
      p.Pass.apply ctx w;
      Weights.normalize_all w)
    passes;
  Weights.clear_touched w;
  Weights.blit ~src:w ~dst:snapshot;
  let step =
    match impl with
    | Weights.Legacy ->
      fun () ->
        Weights.blit ~src:w ~dst:snapshot;
        pass.Pass.apply ctx w;
        Weights.normalize_all w;
        ignore (Weights.validate w)
    | Weights.Flat ->
      fun () ->
        Weights.clear_touched w;
        pass.Pass.apply ctx w;
        Weights.normalize_touched w;
        ignore (Weights.validate_touched w);
        Weights.sync_rows ~rows:(Weights.touched_rows w) ~src:w ~dst:snapshot
  in
  let reps, elapsed = time_reps step in
  if elapsed > 0.0 then float_of_int (n * reps) /. elapsed else 0.0

let kernels () =
  Report.section "Kernels: flat Bigarray weight matrix vs legacy (extension)";
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let region = Cs_workloads.Sha.generate ~scale:4 ~clusters:4 () in
  let ctx = Context.make ~nt_cap:64 ~machine region in
  let passes = Sequence.vliw_default () in
  Printf.printf "workload sha (scale 4), machine vliw-4c: n=%d nc=%d nt=%d\n%!"
    (Context.n_instrs ctx) (Context.n_clusters ctx) ctx.Context.nt;
  Printf.printf "\n%-10s %15s %15s %9s\n" "pass" "legacy rows/s" "flat rows/s" "speedup";
  let rows =
    (* Legacy and flat measured back to back per pass, so slow drift in
       machine load cancels out of the ratio. *)
    List.map
      (fun pass ->
        let l = bench_pass Weights.Legacy ctx passes pass in
        let f = bench_pass Weights.Flat ctx passes pass in
        let s = if l > 0.0 then f /. l else 0.0 in
        Printf.printf "%-10s %15.0f %15.0f %8.2fx\n%!" pass.Pass.name l f s;
        (pass.Pass.name, l, f, s))
      passes
  in
  let agg = Cs_util.Stats.geomean (List.map (fun (_, _, _, s) -> s) rows) in
  Printf.printf "\naggregate speedup (geomean): %.2fx (target >= %.1fx)%s\n" agg
    target_speedup
    (if agg >= target_speedup then "" else "  WARNING: below target");
  let open Cs_obs.Json in
  let json =
    Obj
      [ ("experiment", Str "kernels");
        ("workload", Str "sha-scale4");
        ("machine", Str "vliw-4c");
        ("n", Num (float_of_int (Context.n_instrs ctx)));
        ("nc", Num (float_of_int (Context.n_clusters ctx)));
        ("nt", Num (float_of_int ctx.Context.nt));
        ( "passes",
          List
            (List.map
               (fun (name, l, f, s) ->
                 Obj
                   [ ("pass", Str name);
                     ("legacy_rows_per_s", Num l);
                     ("flat_rows_per_s", Num f);
                     ("speedup", Num s) ])
               rows) );
        ("aggregate_speedup_geomean", Num agg);
        ("target_speedup", Num target_speedup);
        ("meets_target", Bool (agg >= target_speedup));
        ("faster_than_legacy", Bool (agg > 1.0)) ]
  in
  Cs_util.Fsio.write_atomic ~path:"BENCH_kernels.json" (to_string json ^ "\n");
  Printf.printf "\nwrote BENCH_kernels.json\n"
