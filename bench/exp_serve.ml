(* Overload experiment (extension): does the service core survive more
   load than it can serve? Three parts, all against real loopback-TCP
   servers running the same code path as `csched serve`:

   1. Closed-loop capacity. Pipelined clients keep every worker busy;
      jobs/sec is measured per worker count for both engines — the
      work-stealing Lanes engine and the legacy Single_queue baseline.
      The acceptance bar is >= 0.7x linear scaling from 1 worker to
      all available cores (trivially 1.0 on a single-core box).

   2. Open-loop overload. A paced generator offers 0.5x and then 2x
      the measured capacity at a server with a small queue, brownout
      enabled, and a 20% interactive / 80% batch class mix. The
      interactive-lane p99 at 2x must stay within 5x of the 0.5x p99:
      the lane split keeps interactive jobs ahead of the batch backlog
      and brownout tightens pass budgets before anything interactive
      is shed.

   3. Tenant isolation. One tenant saturates the server with batch
      jobs under a per-tenant quota while a second tenant trickles
      interactive jobs. The bar: the saturating tenant draws typed
      quota refusals, the interactive tenant is never shed.

   Duration per load point comes from BENCH_SERVE_SECS (default 4;
   CI sets 20). Machine-readable output lands in BENCH_serve.json
   (written atomically; CI parses it). *)

let duration_s =
  match Sys.getenv_opt "BENCH_SERVE_SECS" with
  | Some s -> (try Float.max 1.0 (float_of_string s) with _ -> 4.0)
  | None -> 4.0

let cores = Domain.recommended_domain_count ()

let with_server cfg f =
  let server = Cs_svc.Server.create cfg in
  let domain = Domain.spawn (fun () -> Cs_svc.Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Cs_svc.Server.stop server;
      Domain.join domain)
    (fun () -> f server (Cs_svc.Server.address server))

(* Job class rides in the id prefix ("i-" / "b-") so replies, which
   echo the request id, can be split back into lanes afterwards. *)
let job ?tenant ?job_class ~prefix i =
  Cs_svc.Proto.request
    ~id:(Printf.sprintf "%s%d" prefix i)
    ~machine:"raw4" ?tenant ?job_class "fir"

let submit ~addr jobs =
  match Cs_svc.Client.submit ~timeout_s:300.0 ~addr jobs with
  | Ok replies -> replies
  | Error e -> failwith ("serve bench submit failed: " ^ e)

let is_scheduled (r : Cs_svc.Proto.reply) =
  match r.Cs_svc.Proto.verdict with
  | Cs_svc.Proto.Scheduled _ -> true
  | Cs_svc.Proto.Refused _ -> false

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- part 1: closed-loop capacity ---------------------------------- *)

type capacity_cell = { engine : string; workers : int; jobs_per_s : float }

let closed_loop_throughput ~engine ~workers =
  let cfg =
    Cs_svc.Server.config ~workers ~queue_capacity:64 ~engine "127.0.0.1:0"
  in
  with_server cfg (fun _ addr ->
      let t0 = Unix.gettimeofday () in
      let stop_at = t0 +. duration_s in
      let clients =
        List.init workers (fun c ->
            Domain.spawn (fun () ->
                let count = ref 0 and batch = ref 0 in
                while Unix.gettimeofday () < stop_at do
                  let jobs =
                    List.init 8
                      (job ~prefix:(Printf.sprintf "cap%d-%d-" c !batch))
                  in
                  incr batch;
                  count :=
                    !count + List.length (List.filter is_scheduled (submit ~addr jobs))
                done;
                !count))
      in
      let total = List.fold_left (fun a d -> a + Domain.join d) 0 clients in
      let elapsed = Float.max (Unix.gettimeofday () -. t0) duration_s in
      float_of_int total /. elapsed)

let capacity_experiment () =
  Report.subsection "closed-loop capacity, lanes vs single queue";
  let worker_counts = List.sort_uniq compare [ 1; cores ] in
  let table =
    Cs_util.Table.create ~header:[ "engine"; "workers"; "jobs/s"; "vs linear" ]
  in
  let engines =
    [ ("single_queue", Cs_svc.Server.Single_queue); ("lanes", Cs_svc.Server.Lanes) ]
  in
  let cells =
    List.concat_map
      (fun (name, engine) ->
        let cells =
          List.map
            (fun workers ->
              { engine = name; workers;
                jobs_per_s = closed_loop_throughput ~engine ~workers })
            worker_counts
        in
        let base = (List.hd cells).jobs_per_s in
        List.iter
          (fun c ->
            let linear = base *. float_of_int c.workers in
            Cs_util.Table.add_row table
              [ c.engine; string_of_int c.workers;
                Printf.sprintf "%.0f" c.jobs_per_s;
                Printf.sprintf "%.2fx" (c.jobs_per_s /. Float.max linear 1e-9) ])
          cells;
        cells)
      engines
  in
  Cs_util.Table.print table;
  let scaling_of name =
    let of_engine = List.filter (fun c -> c.engine = name) cells in
    let base = (List.hd of_engine).jobs_per_s in
    let top = List.nth of_engine (List.length of_engine - 1) in
    top.jobs_per_s /. Float.max (base *. float_of_int top.workers) 1e-9
  in
  let lanes_scaling = scaling_of "lanes" in
  Printf.printf "lanes scaling to %d core%s: %.2fx of linear%s\n" cores
    (if cores = 1 then "" else "s")
    lanes_scaling
    (if lanes_scaling >= 0.7 then "" else "  WARNING: below the 0.7x bar");
  let lanes_top =
    let of_lanes = List.filter (fun c -> c.engine = "lanes") cells in
    (List.nth of_lanes (List.length of_lanes - 1)).jobs_per_s
  in
  let json =
    Cs_obs.Json.Obj
      [ ("scaling_fraction", Cs_obs.Json.Num lanes_scaling);
        ("cores", Cs_obs.Json.Num (float_of_int cores));
        ("cells",
         Cs_obs.Json.List
           (List.map
              (fun c ->
                Cs_obs.Json.Obj
                  [ ("engine", Cs_obs.Json.Str c.engine);
                    ("workers", Cs_obs.Json.Num (float_of_int c.workers));
                    ("jobs_per_s", Cs_obs.Json.Num c.jobs_per_s) ])
              cells)) ]
  in
  (json, lanes_top)

(* --- part 2: open-loop overload ------------------------------------ *)

(* Paced generator: [senders] domains each offer [rate / senders]
   jobs/sec in 50 ms batches, every 5th job interactive-class. A
   blocking submit can slip behind the schedule under overload (the
   pacing loop then runs flat out), so the achieved offered count is
   reported next to the target rate. *)
let offer_load ~addr ~rate =
  let senders = 2 in
  let tick_s = 0.05 in
  let stop_at = Unix.gettimeofday () +. duration_s in
  let domains =
    List.init senders (fun s ->
        Domain.spawn (fun () ->
            let per_tick = rate *. tick_s /. float_of_int senders in
            let acc = ref 0.0 and batch = ref 0 and replies = ref [] in
            let next = ref (Unix.gettimeofday ()) in
            while Unix.gettimeofday () < stop_at do
              let now = Unix.gettimeofday () in
              if now < !next then Unix.sleepf (!next -. now);
              next := !next +. tick_s;
              acc := !acc +. per_tick;
              let n = int_of_float !acc in
              acc := !acc -. float_of_int n;
              if n > 0 then begin
                let jobs =
                  List.init n (fun i ->
                      let interactive = (i + !batch) mod 5 = 0 in
                      job ~tenant:"ol"
                        ~job_class:(if interactive then "interactive" else "batch")
                        ~prefix:
                          (Printf.sprintf "%s-%d-%d-"
                             (if interactive then "i" else "b")
                             s !batch)
                        i)
                in
                incr batch;
                replies := submit ~addr jobs :: !replies
              end
            done;
            List.concat !replies))
  in
  List.concat_map Domain.join domains

type load_cell = {
  factor : float;
  target_rate : float;
  offered : int;
  inter_jobs : int;
  inter_p50 : float;
  inter_p99 : float;
  inter_shed : int;
  shed : int;
  brownout_level : float;
}

let measure_load ~capacity ~factor =
  let cfg =
    Cs_svc.Server.config ~workers:cores ~queue_capacity:32
      ~brownout:Cs_svc.Brownout.default "127.0.0.1:0"
  in
  with_server cfg (fun server addr ->
      let rate = Float.max 8.0 (capacity *. factor) in
      let replies = offer_load ~addr ~rate in
      let inter =
        List.filter
          (fun r -> has_prefix ~prefix:"i-" r.Cs_svc.Proto.reply_id)
          replies
      in
      let inter_ok, inter_refused = List.partition is_scheduled inter in
      let q =
        Report.latency_quantiles
          (List.map (fun r -> r.Cs_svc.Proto.elapsed_ms) inter_ok)
      in
      let stats = Cs_svc.Server.stats server in
      let extra = (Cs_svc.Server.server_stats server).Cs_svc.Proto.extra in
      let level = try List.assoc "brownout_level" extra with Not_found -> 0.0 in
      { factor;
        target_rate = rate;
        offered = List.length replies;
        inter_jobs = List.length inter;
        inter_p50 = q 50.0;
        inter_p99 = q 99.0;
        inter_shed = List.length inter_refused;
        shed = stats.Cs_svc.Server.shed;
        brownout_level = level })

let overload_experiment ~capacity =
  Report.subsection "open-loop overload, interactive-lane p99";
  let cells =
    List.map (fun factor -> measure_load ~capacity ~factor) [ 0.5; 2.0 ]
  in
  let table =
    Cs_util.Table.create
      ~header:
        [ "load"; "target/s"; "offered"; "inter"; "p50_ms"; "p99_ms"; "i-shed";
          "shed"; "brownout" ]
  in
  List.iter
    (fun c ->
      Cs_util.Table.add_row table
        [ Printf.sprintf "%.1fx" c.factor;
          Printf.sprintf "%.0f" c.target_rate;
          string_of_int c.offered; string_of_int c.inter_jobs;
          Report.fl c.inter_p50; Report.fl c.inter_p99;
          string_of_int c.inter_shed; string_of_int c.shed;
          Printf.sprintf "%.0f" c.brownout_level ])
    cells;
  Cs_util.Table.print table;
  let half = List.hd cells and double = List.nth cells 1 in
  let ratio =
    if half.inter_p99 > 0.0 then double.inter_p99 /. half.inter_p99 else 0.0
  in
  Printf.printf "interactive p99 at 2x load: %.1fx the 0.5x-load p99%s\n" ratio
    (if ratio <= 5.0 then "" else "  WARNING: above the 5x degradation bar");
  let cell_json c =
    Cs_obs.Json.Obj
      [ ("factor", Cs_obs.Json.Num c.factor);
        ("target_rate", Cs_obs.Json.Num c.target_rate);
        ("offered", Cs_obs.Json.Num (float_of_int c.offered));
        ("interactive_jobs", Cs_obs.Json.Num (float_of_int c.inter_jobs));
        ("interactive_p50_ms", Cs_obs.Json.Num c.inter_p50);
        ("interactive_p99_ms", Cs_obs.Json.Num c.inter_p99);
        ("interactive_shed", Cs_obs.Json.Num (float_of_int c.inter_shed));
        ("shed", Cs_obs.Json.Num (float_of_int c.shed));
        ("brownout_level", Cs_obs.Json.Num c.brownout_level) ]
  in
  Cs_obs.Json.Obj
    [ ("p99_ratio", Cs_obs.Json.Num ratio);
      ("half_load", cell_json half);
      ("double_load", cell_json double) ]

(* --- part 3: tenant isolation -------------------------------------- *)

let isolation_experiment () =
  Report.subsection "tenant isolation under a saturating batch tenant";
  let cfg =
    Cs_svc.Server.config ~workers:cores ~queue_capacity:16 ~tenant_quota:4
      "127.0.0.1:0"
  in
  with_server cfg (fun server addr ->
      let stop_at = Unix.gettimeofday () +. duration_s in
      let flood =
        Domain.spawn (fun () ->
            let batch = ref 0 and refused = ref 0 and sent = ref 0 in
            while Unix.gettimeofday () < stop_at do
              let jobs =
                List.init 16
                  (job ~tenant:"bulk" ~job_class:"batch"
                     ~prefix:(Printf.sprintf "bulk-%d-" !batch))
              in
              incr batch;
              sent := !sent + 16;
              refused :=
                !refused
                + List.length
                    (List.filter (fun r -> not (is_scheduled r)) (submit ~addr jobs))
            done;
            (!sent, !refused))
      in
      let fg_replies = ref [] in
      while Unix.gettimeofday () < stop_at do
        let r =
          submit ~addr
            [ job ~tenant:"fg" ~job_class:"interactive"
                ~prefix:(Printf.sprintf "fg-%d-" (List.length !fg_replies))
                0 ]
        in
        fg_replies := r @ !fg_replies;
        Unix.sleepf 0.1
      done;
      let bulk_sent, bulk_refused = Domain.join flood in
      let fg_jobs = List.length !fg_replies in
      let fg_shed =
        List.length (List.filter (fun r -> not (is_scheduled r)) !fg_replies)
      in
      let stats = Cs_svc.Server.stats server in
      Printf.printf
        "bulk: %d offered, %d refused (%d by quota) — fg: %d jobs, %d shed%s\n"
        bulk_sent bulk_refused stats.Cs_svc.Server.quota_refused fg_jobs fg_shed
        (if fg_shed = 0 then "" else "  WARNING: interactive tenant was shed");
      Cs_obs.Json.Obj
        [ ("bulk_offered", Cs_obs.Json.Num (float_of_int bulk_sent));
          ("bulk_refused", Cs_obs.Json.Num (float_of_int bulk_refused));
          ("quota_refused",
           Cs_obs.Json.Num (float_of_int stats.Cs_svc.Server.quota_refused));
          ("fg_jobs", Cs_obs.Json.Num (float_of_int fg_jobs));
          ("fg_shed", Cs_obs.Json.Num (float_of_int fg_shed)) ])

(* --- driver -------------------------------------------------------- *)

let serve () =
  Report.section "Overload: lanes, fair admission, brownout (extension)";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.printf "%d core%s, %.0f s per load point (BENCH_SERVE_SECS)\n" cores
    (if cores = 1 then "" else "s")
    duration_s;
  let capacity_json, capacity = capacity_experiment () in
  let overload_json = overload_experiment ~capacity in
  let isolation_json = isolation_experiment () in
  let json =
    Cs_obs.Json.Obj
      [ ("experiment", Cs_obs.Json.Str "serve");
        ("duration_s", Cs_obs.Json.Num duration_s);
        ("capacity", capacity_json);
        ("overload", overload_json);
        ("isolation", isolation_json) ]
  in
  Cs_util.Fsio.write_atomic ~path:"BENCH_serve.json"
    (Cs_obs.Json.to_string json ^ "\n");
  Printf.printf "\nwrote BENCH_serve.json\n"
