(* Gateway fleet experiment (extension): what does the sharded gateway
   buy over a lone server? Two parts, both against real loopback-TCP
   servers — the same binaries-worth of code `csched serve`/`csched
   gateway` run, minus the process boundary:

   1. Result cache under 50% repeat traffic. A warm wave populates the
      gateway's LRU, then a measured wave mixes repeats (cache hits,
      answered at the gateway) 1:1 with fresh scenarios (forwarded and
      scheduled on a shard). Reported: p50/p99 per class and the p99
      speedup — the acceptance bar is cached p99 at least 5x better.

   2. Kill-a-shard chaos drill. A batch is submitted with every shard
      slowed so jobs are mid-flight, then the busier shard is severed.
      Reported: lost and duplicated replies (both must be zero — the
      gateway replays in-flight jobs of a dead shard on a survivor
      exactly once) and the replay/reroute counters.

   Machine-readable output lands in BENCH_gateway.json (written
   atomically; CI parses it). *)

let n_unique = 24

type class_stats = { n : int; p50 : float; p99 : float }

let class_stats replies =
  let lat = List.map (fun r -> r.Cs_svc.Proto.elapsed_ms) replies in
  let q = Report.latency_quantiles lat in
  { n = List.length replies; p50 = q 50.0; p99 = q 99.0 }

let with_server ?chaos_slow_ms () =
  let cfg = Cs_svc.Server.config ~workers:2 ?chaos_slow_ms "127.0.0.1:0" in
  let server = Cs_svc.Server.create cfg in
  let domain = Domain.spawn (fun () -> Cs_svc.Server.run server) in
  (server, domain)

let with_fleet ?chaos_slow_ms f =
  let s1, d1 = with_server ?chaos_slow_ms () in
  let s2, d2 = with_server ?chaos_slow_ms () in
  let shard_spec s = Cs_svc.Transport.to_string (Cs_svc.Server.address s) in
  let gw =
    Cs_gateway.Gateway.create
      (Cs_gateway.Gateway.config ~forwarders:4 ~cache_capacity:256
         ~probe_period_s:0.2
         ~shards:[ shard_spec s1; shard_spec s2 ]
         "127.0.0.1:0")
  in
  let dg = Domain.spawn (fun () -> Cs_gateway.Gateway.run gw) in
  Fun.protect
    ~finally:(fun () ->
      Cs_gateway.Gateway.stop gw;
      Domain.join dg;
      Cs_svc.Server.stop s1;
      Cs_svc.Server.stop s2;
      Domain.join d1;
      Domain.join d2)
    (fun () -> f gw (s1, s2))

let job ~prefix ~seed i =
  Cs_svc.Proto.request
    ~id:(Printf.sprintf "%s%d" prefix i)
    ~machine:"raw4" ~seed "fir"

let submit ~addr jobs =
  match Cs_svc.Client.submit ~timeout_s:300.0 ~addr jobs with
  | Ok replies -> replies
  | Error e -> failwith ("gateway bench submit failed: " ^ e)

let cache_experiment () =
  Report.subsection "result cache, 50% repeat traffic";
  with_fleet @@ fun gw _ ->
  let addr = Cs_gateway.Gateway.address gw in
  let warm = List.init n_unique (fun i -> job ~prefix:"warm" ~seed:i i) in
  ignore (submit ~addr warm);
  let measured =
    List.concat
      (List.init n_unique (fun i ->
           [ job ~prefix:"rep" ~seed:i i;            (* repeat: cache hit *)
             job ~prefix:"new" ~seed:(1000 + i) i ] (* fresh: forwarded *)))
  in
  let replies = submit ~addr measured in
  let cached, uncached = List.partition (fun r -> r.Cs_svc.Proto.cached) replies in
  let c = class_stats cached and u = class_stats uncached in
  let speedup = if c.p99 > 0.0 then u.p99 /. c.p99 else infinity in
  let table =
    Cs_util.Table.create ~header:[ "class"; "jobs"; "p50_ms"; "p99_ms" ]
  in
  Cs_util.Table.add_row table
    [ "cached"; string_of_int c.n; Report.fl c.p50; Report.fl c.p99 ];
  Cs_util.Table.add_row table
    [ "uncached"; string_of_int u.n; Report.fl u.p50; Report.fl u.p99 ];
  Cs_util.Table.print table;
  Printf.printf "p99 speedup from cache: %.1fx%s\n" speedup
    (if speedup >= 5.0 then "" else "  WARNING: below the 5x acceptance bar");
  let st = Cs_gateway.Gateway.stats gw in
  Printf.printf "gateway: %d hits / %d misses / %d forwarded\n"
    st.Cs_gateway.Gateway.cache_hits st.Cs_gateway.Gateway.cache_misses
    st.Cs_gateway.Gateway.forwarded;
  let cls name s =
    ( name,
      Cs_obs.Json.Obj
        [ ("jobs", Cs_obs.Json.Num (float_of_int s.n));
          ("p50_ms", Cs_obs.Json.Num s.p50); ("p99_ms", Cs_obs.Json.Num s.p99) ] )
  in
  Cs_obs.Json.Obj
    [ ("repeat_fraction", Cs_obs.Json.Num 0.5);
      cls "cached" c; cls "uncached" u;
      ("p99_speedup", Cs_obs.Json.Num speedup);
      ("cache_hits", Cs_obs.Json.Num (float_of_int st.Cs_gateway.Gateway.cache_hits));
      ("cache_misses", Cs_obs.Json.Num (float_of_int st.Cs_gateway.Gateway.cache_misses)) ]

let chaos_experiment () =
  Report.subsection "kill-a-shard chaos drill";
  with_fleet ~chaos_slow_ms:200.0 @@ fun gw (s1, s2) ->
  let n_jobs = 16 in
  let jobs = List.init n_jobs (fun i -> job ~prefix:"chaos" ~seed:i i) in
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.12;
        let victim =
          if (Cs_svc.Server.stats s1).Cs_svc.Server.admitted > 0 then s1 else s2
        in
        Cs_svc.Server.abort victim)
  in
  let replies = submit ~addr:(Cs_gateway.Gateway.address gw) jobs in
  Domain.join killer;
  let answered id =
    List.length (List.filter (fun r -> r.Cs_svc.Proto.reply_id = id) replies)
  in
  let lost =
    List.length (List.filter (fun j -> answered j.Cs_svc.Proto.id = 0) jobs)
  in
  let duplicated =
    List.length (List.filter (fun j -> answered j.Cs_svc.Proto.id > 1) jobs)
  in
  let refused =
    List.length
      (List.filter
         (fun r ->
           match r.Cs_svc.Proto.verdict with
           | Cs_svc.Proto.Refused _ -> true
           | Cs_svc.Proto.Scheduled _ -> false)
         replies)
  in
  let st = Cs_gateway.Gateway.stats gw in
  Printf.printf
    "%d jobs, one shard killed mid-batch: %d lost, %d duplicated, %d refused, \
     %d replayed, %d rerouted\n"
    n_jobs lost duplicated refused st.Cs_gateway.Gateway.replayed
    st.Cs_gateway.Gateway.rerouted;
  if lost > 0 || duplicated > 0 then
    Printf.printf "WARNING: exactly-once failover violated\n";
  Cs_obs.Json.Obj
    [ ("jobs", Cs_obs.Json.Num (float_of_int n_jobs));
      ("lost", Cs_obs.Json.Num (float_of_int lost));
      ("duplicated", Cs_obs.Json.Num (float_of_int duplicated));
      ("refused", Cs_obs.Json.Num (float_of_int refused));
      ("replayed", Cs_obs.Json.Num (float_of_int st.Cs_gateway.Gateway.replayed));
      ("rerouted", Cs_obs.Json.Num (float_of_int st.Cs_gateway.Gateway.rerouted)) ]

let gateway () =
  Report.section "Gateway fleet: result cache and failover (extension)";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cache_json = cache_experiment () in
  let chaos_json = chaos_experiment () in
  let json =
    Cs_obs.Json.Obj
      [ ("experiment", Cs_obs.Json.Str "gateway");
        ("shards", Cs_obs.Json.Num 2.0);
        ("cache", cache_json);
        ("chaos", chaos_json) ]
  in
  Cs_util.Fsio.write_atomic ~path:"BENCH_gateway.json"
    (Cs_obs.Json.to_string json ^ "\n");
  Printf.printf "\nwrote BENCH_gateway.json\n"
