(* Shared reporting helpers for the benchmark harness. *)

let section title =
  let rule = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n" rule title rule

let subsection title = Printf.printf "\n--- %s ---\n" title

let fl = Cs_util.Table.cell_float

let raw_suite_names () =
  List.map (fun e -> e.Cs_workloads.Suite.name) Cs_workloads.Suite.raw_suite

let vliw_suite_names () =
  List.map (fun e -> e.Cs_workloads.Suite.name) Cs_workloads.Suite.vliw_suite

(* Geometric-mean ratio of a/b speedups, reported as a percentage
   improvement — the kind of "average improvement" number the paper
   quotes (21% over Rawcc, 14% over UAS, 28% over PCC). *)
let average_improvement pairs =
  let ratios = List.map (fun (a, b) -> a /. b) pairs in
  (Cs_util.Stats.geomean ratios -. 1.0) *. 100.0

(* Latency quantiles through the mergeable log-bucket histogram — the
   same estimator the fleet's `metrics` verb and `csched top` report,
   so bench tables and live dashboards agree on methodology. *)
let latency_quantiles samples =
  let reg = Cs_obs.Metrics.create () in
  let h = Cs_obs.Metrics.histogram reg "latency_ms" in
  List.iter (Cs_obs.Metrics.observe h) samples;
  match Cs_obs.Metrics.find (Cs_obs.Metrics.snapshot reg) "latency_ms" with
  | Some (Cs_obs.Metrics.Histo_v histo) -> fun p -> Cs_obs.Metrics.quantile histo p
  | _ -> fun _ -> 0.0
