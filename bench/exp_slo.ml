(* Latency-SLO experiment (extension): what service level can the
   anytime scheduler sustain? Every benchmark of each evaluation
   machine's suite is run as a service job under a sweep of per-job
   deadlines, in-process through the same Job runner `csched serve`
   uses. Reported per (machine, SLO): p50/p95/p99 job latency and the
   deadline-hit rate — the fraction of jobs that came back with a
   schedule inside their deadline. The anytime property is what keeps
   tight-SLO hit rates non-zero: on expiry the driver stops between
   passes and list-schedules the best-so-far matrix instead of either
   overshooting or refusing.

   Machine-readable output lands in BENCH_slo.json (written atomically;
   CI parses it). *)

let repeats = 5
let slos_ms = [ 2.0; 10.0; 50.0; 1000.0 ]

type cell = {
  slo_ms : float;
  p50 : float;
  p95 : float;
  p99 : float;
  hit_rate : float;
  anytime_exits : int;
  jobs : int;
}

let run_machine ~machine_name ~suite =
  Report.subsection machine_name;
  let table =
    Cs_util.Table.create
      ~header:[ "slo_ms"; "p50_ms"; "p95_ms"; "p99_ms"; "hit%"; "anytime"; "jobs" ]
  in
  let cells =
    List.map
      (fun slo ->
        let replies =
          List.concat_map
            (fun entry ->
              List.init repeats (fun i ->
                  let req =
                    Cs_svc.Proto.request
                      ~id:(Printf.sprintf "%s-%d" entry.Cs_workloads.Suite.name i)
                      ~machine:machine_name ~deadline_ms:slo
                      entry.Cs_workloads.Suite.name
                  in
                  Cs_svc.Job.run (Cs_svc.Job.admit req)))
            suite
        in
        let latencies = List.map (fun r -> r.Cs_svc.Proto.elapsed_ms) replies in
        let scheduled_in_time, anytime_exits =
          List.fold_left
            (fun (hits, anytime) r ->
              match r.Cs_svc.Proto.verdict with
              | Cs_svc.Proto.Scheduled s ->
                ( (if r.Cs_svc.Proto.elapsed_ms <= slo then hits + 1 else hits),
                  if s.timed_out then anytime + 1 else anytime )
              | Cs_svc.Proto.Refused _ -> (hits, anytime))
            (0, 0) replies
        in
        let jobs = List.length replies in
        let q = Report.latency_quantiles latencies in
        let cell =
          { slo_ms = slo;
            p50 = q 50.0;
            p95 = q 95.0;
            p99 = q 99.0;
            hit_rate = float_of_int scheduled_in_time /. float_of_int jobs;
            anytime_exits; jobs }
        in
        Cs_util.Table.add_row table
          [ Printf.sprintf "%.0f" cell.slo_ms;
            Report.fl cell.p50; Report.fl cell.p95; Report.fl cell.p99;
            Printf.sprintf "%.1f" (100.0 *. cell.hit_rate);
            string_of_int cell.anytime_exits;
            string_of_int cell.jobs ];
        cell)
      slos_ms
  in
  Cs_util.Table.print table;
  cells

let cell_to_json c =
  let open Cs_obs.Json in
  Obj
    [ ("slo_ms", Num c.slo_ms); ("p50_ms", Num c.p50); ("p95_ms", Num c.p95);
      ("p99_ms", Num c.p99); ("hit_rate", Num c.hit_rate);
      ("anytime_exits", Num (float_of_int c.anytime_exits));
      ("jobs", Num (float_of_int c.jobs)) ]

let slo () =
  Report.section
    "Latency SLO: anytime scheduling under per-job deadlines (extension)";
  Printf.printf
    "each suite benchmark submitted %d times per SLO through the service job \
     runner;\nhit%% = schedule returned within the deadline (anytime exits count \
     when on time)\n"
    repeats;
  let machines =
    [ ("raw16", Cs_workloads.Suite.raw_suite); ("vliw4", Cs_workloads.Suite.vliw_suite) ]
  in
  let results =
    List.map
      (fun (machine_name, suite) ->
        (machine_name, run_machine ~machine_name ~suite))
      machines
  in
  let json =
    Cs_obs.Json.Obj
      [ ("experiment", Cs_obs.Json.Str "slo");
        ("repeats", Cs_obs.Json.Num (float_of_int repeats));
        ("machines",
         Cs_obs.Json.List
           (List.map
              (fun (name, cells) ->
                Cs_obs.Json.Obj
                  [ ("machine", Cs_obs.Json.Str name);
                    ("cells", Cs_obs.Json.List (List.map cell_to_json cells)) ])
              results)) ]
  in
  Cs_util.Fsio.write_atomic ~path:"BENCH_slo.json" (Cs_obs.Json.to_string json ^ "\n");
  Printf.printf "\nwrote BENCH_slo.json\n";
  (* The loosest SLO must be essentially always hit — if it is not, the
     service path itself regressed, not the scheduler. *)
  List.iter
    (fun (name, cells) ->
      match List.rev cells with
      | loosest :: _ when loosest.hit_rate < 0.99 ->
        Printf.printf "WARNING %s: hit rate %.2f at %.0f ms SLO\n" name
          loosest.hit_rate loosest.slo_ms
      | _ -> ())
    results
