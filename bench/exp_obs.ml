(* Observability overhead experiment (extension): what does fleet
   telemetry cost? Three measurements:

   1. Sink throughput — events/second the domain-sharded Obs sink
      sustains for a representative instant/counter/span mix, drained
      periodically the way a serving process drains on export.
   2. Metrics hot path — counter-increment + histogram-observe ops/sec
      on one domain, and an exactness check under multi-domain
      contention (the registry must not lose counts).
   3. End-to-end overhead — real scheduling jobs run through the
      service Job runner bare, then wrapped in the exact telemetry the
      server hot path adds (trace context, queue/run spans, latency and
      wait histograms, counters, deadline SLO). Reported as % slowdown,
      median of [trials]; the acceptance guard is <= 3%.

   Machine-readable output lands in BENCH_obs.json (written atomically;
   CI parses it). *)

module Metrics = Cs_obs.Metrics

let trials = 5
let sink_events = 120_000
let metric_ops = 1_000_000
let overhead_jobs = 12
let guard_pct = 3.0

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

(* --- 1. sink throughput --- *)

let sink_throughput () =
  Cs_obs.Obs.reset ();
  Cs_obs.Obs.enable ();
  let t0 = Cs_obs.Clock.now () in
  let drained = ref 0 in
  for i = 1 to sink_events / 3 do
    Cs_obs.Obs.instant ~cat:"bench" "tick";
    Cs_obs.Obs.counter ~cat:"bench" "load" [ ("depth", float_of_int (i land 63)) ];
    Cs_obs.Obs.span ~cat:"bench" "work" (fun () -> ());
    (* Drain the way a server does on export, staying under capacity. *)
    if i mod 20_000 = 0 then drained := !drained + List.length (Cs_obs.Obs.events ())
  done;
  drained := !drained + List.length (Cs_obs.Obs.events ());
  let dt = Cs_obs.Clock.now () -. t0 in
  let dropped = Cs_obs.Obs.dropped () in
  Cs_obs.Obs.disable ();
  Cs_obs.Obs.reset ();
  let rate = float_of_int !drained /. dt in
  Printf.printf "sink: %d events in %.3f s = %.0f events/s (%d dropped)\n"
    !drained dt rate dropped;
  (rate, dropped)

(* --- 2. metrics hot path --- *)

let metrics_throughput () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "bench_ops_total" in
  let h = Metrics.histogram reg "bench_latency_ms" in
  let t0 = Cs_obs.Clock.now () in
  for i = 1 to metric_ops / 2 do
    Metrics.incr c;
    Metrics.observe h (float_of_int (i land 1023))
  done;
  let dt = Cs_obs.Clock.now () -. t0 in
  let rate = float_of_int metric_ops /. dt in
  Printf.printf "metrics: %d ops in %.3f s = %.0f ops/s\n" metric_ops dt rate;
  (* Exactness under contention: four domains hammer one counter. *)
  let reg2 = Metrics.create () in
  let c2 = Metrics.counter reg2 "bench_contended_total" in
  let per_domain = 100_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c2
            done))
  in
  List.iter Domain.join domains;
  let exact = Metrics.counter_value c2 = 4 * per_domain in
  Printf.printf "contended counter: %d (exact: %b)\n" (Metrics.counter_value c2) exact;
  (rate, exact)

(* --- 3. end-to-end overhead --- *)

let make_requests () =
  List.init overhead_jobs (fun i ->
      Cs_svc.Proto.request
        ~id:(Printf.sprintf "obs-%d" i)
        ~machine:"raw4" ~seed:i "fir")

let run_plain reqs =
  let t0 = Cs_obs.Clock.now () in
  List.iter (fun r -> ignore (Cs_svc.Job.run (Cs_svc.Job.admit r))) reqs;
  1000.0 *. (Cs_obs.Clock.now () -. t0)

(* Mirror the server worker's telemetry around each job: trace context
   from the request, queue + run spans, wait/latency observations,
   counters, and the deadline SLO window. *)
let run_instrumented meters reqs =
  let m : Cs_svc.Meters.t = meters in
  Cs_obs.Obs.reset ();
  Cs_obs.Obs.enable ();
  let t0 = Cs_obs.Clock.now () in
  List.iter
    (fun r ->
      let r = Cs_svc.Proto.with_trace ~ctx:(Cs_obs.Tracectx.root ()) r in
      let job = Cs_svc.Job.admit r in
      Metrics.incr m.Cs_svc.Meters.admitted;
      let ctx_args =
        match Cs_svc.Proto.trace_of_request r with
        | Some ctx -> Cs_obs.Tracectx.args ctx
        | None -> []
      in
      let job_args = ("id", Cs_obs.Obs.Str r.Cs_svc.Proto.id) :: ctx_args in
      let start = Cs_obs.Clock.now () in
      Metrics.observe m.Cs_svc.Meters.queue_wait_ms 0.01;
      Cs_obs.Obs.complete ~cat:"svc" ~args:job_args "job:queue" ~ts:start ~dur:0.0;
      let reply =
        Cs_obs.Obs.span ~cat:"svc" ~args:job_args "job:run" (fun () ->
            Cs_svc.Job.run job)
      in
      Metrics.observe m.Cs_svc.Meters.latency_ms
        (1000.0 *. (Cs_obs.Clock.now () -. start));
      Metrics.incr m.Cs_svc.Meters.completed;
      Metrics.record_deadline m.Cs_svc.Meters.deadline
        ~hit:
          (match reply.Cs_svc.Proto.verdict with
          | Cs_svc.Proto.Scheduled _ -> true
          | Cs_svc.Proto.Refused _ -> false))
    reqs;
  let dt = 1000.0 *. (Cs_obs.Clock.now () -. t0) in
  Cs_obs.Obs.disable ();
  ignore (Cs_obs.Obs.events ());
  dt

let overhead () =
  Report.subsection "end-to-end overhead, telemetry on vs off";
  let reqs = make_requests () in
  (* one unmeasured warmup of each flavor *)
  ignore (run_plain reqs);
  let meters = Cs_svc.Meters.create () in
  ignore (run_instrumented meters reqs);
  let plain = List.init trials (fun _ -> run_plain reqs) in
  let instr = List.init trials (fun _ -> run_instrumented meters reqs) in
  let p = median plain and i = median instr in
  let pct = if p > 0.0 then 100.0 *. (i -. p) /. p else 0.0 in
  Printf.printf
    "%d jobs x %d trials: plain %.1f ms, instrumented %.1f ms, overhead %.2f%%%s\n"
    overhead_jobs trials p i pct
    (if pct <= guard_pct then "" else "  WARNING: above the 3% guard");
  (p, i, pct)

let obs () =
  Report.section "Observability: sink, metrics hot path, telemetry overhead (extension)";
  let sink_rate, sink_dropped = sink_throughput () in
  let ops_rate, exact = metrics_throughput () in
  let plain_ms, instr_ms, pct = overhead () in
  let open Cs_obs.Json in
  let json =
    Obj
      [ ("experiment", Str "obs");
        ("sink_events_per_s", Num sink_rate);
        ("sink_dropped", Num (float_of_int sink_dropped));
        ("metrics_ops_per_s", Num ops_rate);
        ("multi_domain_exact", Bool exact);
        ( "overhead",
          Obj
            [ ("jobs", Num (float_of_int overhead_jobs));
              ("trials", Num (float_of_int trials));
              ("plain_ms_median", Num plain_ms);
              ("instrumented_ms_median", Num instr_ms);
              ("overhead_pct", Num pct);
              ("guard_pct", Num guard_pct);
              ("pass", Bool (pct <= guard_pct)) ] ) ]
  in
  Cs_util.Fsio.write_atomic ~path:"BENCH_obs.json" (to_string json ^ "\n");
  Printf.printf "\nwrote BENCH_obs.json\n"
