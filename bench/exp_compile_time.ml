(* Fig. 10: compile-time scalability of PCC, UAS, and convergent
   scheduling against region size on the clustered VLIW. *)

let sizes = [ 50; 100; 200; 400; 800; 1200; 1600; 2000 ]

let fig10 () =
  Report.section "Figure 10: compile time vs input size on Chorus (seconds, wall time)";
  let machine = Cs_machine.Vliw.create ~n_clusters:4 () in
  let schedulers = [ Cs_sim.Pipeline.Pcc; Cs_sim.Pipeline.Uas; Cs_sim.Pipeline.Convergent ] in
  let sweeps =
    List.map
      (fun scheduler ->
        (scheduler, Cs_sim.Compile_time.sweep ~sizes ~scheduler ~machine ()))
      schedulers
  in
  let table =
    Cs_util.Table.create
      ~header:("instructions" :: List.map Cs_sim.Pipeline.scheduler_name schedulers)
  in
  List.iteri
    (fun k _ ->
      let n = (List.nth (snd (List.hd sweeps)) k).Cs_sim.Compile_time.n_instrs in
      Cs_util.Table.add_row table
        (string_of_int n
        :: List.map
             (fun (_, points) ->
               Printf.sprintf "%.4f" (List.nth points k).Cs_sim.Compile_time.seconds)
             sweeps))
    sizes;
  Cs_util.Table.print table;
  (* Growth factor from the smallest to the largest size, normalized by
     the size ratio: 1.0 = perfectly linear scaling. *)
  List.iter
    (fun (scheduler, points) ->
      let first = List.hd points and last = List.nth points (List.length points - 1) in
      if first.Cs_sim.Compile_time.seconds > 0.0 then begin
        let time_ratio = last.Cs_sim.Compile_time.seconds /. first.Cs_sim.Compile_time.seconds in
        let size_ratio =
          float_of_int last.Cs_sim.Compile_time.n_instrs
          /. float_of_int first.Cs_sim.Compile_time.n_instrs
        in
        Printf.printf "%-12s grows %.1fx over a %.1fx size increase (superlinearity %.1f)\n"
          (Cs_sim.Pipeline.scheduler_name scheduler)
          time_ratio size_ratio (time_ratio /. size_ratio)
      end)
    sweeps;
  Printf.printf
    "(paper: convergent and UAS take about the same time and scale considerably\n better than PCC)\n"
